(** The degradation ladder: Maestro's maintain-semantics-at-lower-speed
    contract (paper §4.4, §6) made explicit, extended with the
    state-compute-replication rung of Xu et al. (arXiv 2309.14647).

    The pipeline always produces a plan whose behavior matches the
    sequential NF; what degrades under adversity is {e speed}, one rung
    at a time:

    {v
      shared-nothing        state shards: an RSS key steers each flow's
        |                   packets to one core, which owns its state
        | no key / sharding blocked / budget exhausted
        v
      state-compute-        full replica per core + per-packet update
      replication (SCR)     digest broadcast: any core serves any flow
        |
        | NF never writes (replication is free anyway), or the
        | digest would exceed the replication budget
        v
      lock-based            one shared state behind the reader-writer
        |                   lock; write packets serialize
        | multi-queue dispatch unavailable (cores > NIC queues,
        | or a single-core request)
        v
      serial                one core, sequential speed, zero contention
    v}

    Selection conditions, top to bottom:

    + {e shared-nothing} — the sharding analysis found partitionable
      keys and RS3 solved an RSS key for them (also the rung recorded
      for stateless / read-only NFs, which parallelize without a key);
    + {e state-compute-replication} — the NF writes state that cannot
      be sharded, but {!Scrspec.admissible} finds a per-packet digest
      within the replication budget: every core keeps a full replica
      and replays the other cores' updates — no shared writes, at the
      cost of replicated memory and replay cycles;
    + {e lock-based} — shared state behind the reader-writer lock;
      chosen when SCR is inadmissible or explicitly forced;
    + {e serial} — one core; chosen when multi-queue dispatch itself is
      unavailable (more cores requested than the NIC has queues, or a
      single-core request).

    Every {!Pipeline.outcome} carries the ladder walked for it: which
    rungs were rejected, why, and which was chosen — so run reports can
    show {e why} a plan is slower than hoped rather than silently
    falling back.  The walk feeds the [ladder.*] telemetry counters
    ([ladder.shared_nothing], [ladder.scr], [ladder.lock_based],
    [ladder.serial], [ladder.degradations]). *)

type rung = Shared_nothing | Scr | Lock_based | Serial

val rung_name : rung -> string

val descent : rung -> rung list
(** The given rung followed by every rung below it, fastest first — the
    order an online controller degrades (and, read bottom-up, recovers)
    through when it may not climb above the compile-time choice. *)

type step = {
  rung : rung;
  taken : bool;  (** [true] for the chosen rung, [false] for rejected ones *)
  reason : string;  (** why this rung was rejected, or why it was chosen *)
}

type t = { chosen : rung; steps : step list }

val top : string -> t
(** A ladder that kept the top rung (no degradation), with the reason it
    was available. *)

val make : step list -> t
(** Build a ladder from the walked steps (ordered top rung first); the
    chosen rung is the first [taken] step.  Feeds the [ladder.*]
    telemetry counters. *)

val degraded : t -> bool
(** [true] when anything below the top rung was chosen. *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
