(** State-compute replication, static analysis half (Xu et al.,
    arXiv 2309.14647; ROADMAP item 1).

    SCR lets {e any} core process {e any} flow with zero shared writes:
    every core keeps a {e full} replica of the NF's state, the
    dispatcher derives a compact per-packet {e update digest} from the
    packet headers, and each core replays every other core's digests
    against its own replica.  Unlike sharding there is nothing to
    solve — no RSS key, no partitionable keys — so the discipline slots
    into the degradation ladder between shared-nothing and the lock
    rung: it costs replicated memory and per-core replay cycles instead
    of cross-core lock contention.

    This module is the static half, pure AST analysis shared by
    {!Pipeline} (rung admissibility), {!Sim} (digest size feeds the
    contention model) and the runtime ([Runtime.Scr] stages the slice
    and applies digests):

    - the {e write classification} ({!stmt_writes}, {!nf_writes}) the
      pool's lock discipline also uses;
    - the {e write-slice}: the NF's statement tree with every subtree
      that cannot reach a state write pruned to [Drop], and [Forward]
      leaves (a replica replays updates, it does not emit packets)
      replaced by [Drop].  Binders, reads and branch conditions feeding
      a write are preserved, so the slice reproduces the full NF's
      writes exactly, given the same header fields and an identical
      replica;
    - the {e digest spec}: which header fields (plus port, frame
      length, timestamp) the slice reads — the bytes the dispatcher
      must broadcast per packet. *)

type t = {
  nf : Dsl.Ast.t;  (** the original NF *)
  slice : Dsl.Ast.t;  (** its write-slice (a valid NF; every leaf is [Drop]) *)
  fields : Packet.Field.t list;  (** header fields in the digest, sorted *)
  needs_port : bool;  (** digest carries the 16-bit arrival port *)
  needs_len : bool;  (** digest carries the 16-bit frame length *)
  needs_ts : bool;
      (** digest carries the 48-bit timestamp (any chain operation or
          [Now] read forces it) *)
  written_objects : string list;
      (** state objects some path writes, in declaration-walk order —
          the set on which replicas must stay equal (purge-pair maps of
          a [Chain_expire] included) *)
  digest_bytes : int;  (** modeled wire size of one packet's digest *)
}

val default_max_bytes : int
(** 64 — the replication budget {!admissible} enforces by default.  A
    digest wider than this approaches header size, and replaying it
    stops being cheaper than re-dispatching the packet. *)

val stmt_writes : Dsl.Ast.stmt -> bool
(** Conservative static write classification: [true] when any path of
    the statement writes state.  Shared with the pool's lock/TM
    disciplines. *)

val nf_writes : Dsl.Ast.t -> bool
(** {!stmt_writes} on the NF's packet handler. *)

val derive : Dsl.Ast.t -> t
(** Compute the slice, digest spec and write set.  Total: every NF has
    a derivation (an NF with no writes gets an empty write set and a
    slice that drops everything). *)

val admissible : ?max_bytes:int -> Dsl.Ast.t -> (t, string) result
(** {!derive}, gated the way the ladder needs: [Error] with a
    developer-facing reason when the NF never writes state (read-only
    replication is free, SCR buys nothing) or when the digest exceeds
    [max_bytes] (default {!default_max_bytes}). *)

val pp : Format.formatter -> t -> unit
