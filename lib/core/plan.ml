type strategy = Shared_nothing | Scr | Lock_based | Tm_based | Load_balance

let strategy_name = function
  | Shared_nothing -> "shared-nothing"
  | Scr -> "state-compute-replication"
  | Lock_based -> "lock-based"
  | Tm_based -> "transactional-memory"
  | Load_balance -> "load-balance"

type port_rss = { key : Bitvec.t; field_set : Nic.Field_set.t }

type t = {
  nf : Dsl.Ast.t;
  cores : int;
  nic : Nic.Model.t;
  strategy : strategy;
  rss : port_rss array;
  constraints : Rs3.Cstr.t list;
  warnings : string list;
}

let rss_engine ?reta t port =
  let { key; field_set } = t.rss.(port) in
  Nic.Rss.configure ?reta ~nic:t.nic ~key ~sets:[ field_set ] ~queues:t.cores ()

let state_divisor t =
  match t.strategy with
  | Shared_nothing -> t.cores
  (* SCR replicates the FULL state on every core (divisor 1 despite the
     per-core instances); lock/TM share one instance; load-balance
     replicates read-only state *)
  | Scr | Lock_based | Tm_based | Load_balance -> 1

let pp fmt t =
  Format.fprintf fmt "@[<v>nf: %s@ strategy: %s@ cores: %d@ nic: %s@ " t.nf.Dsl.Ast.name
    (strategy_name t.strategy) t.cores (Nic.Model.name t.nic);
  Array.iteri
    (fun port { key; field_set } ->
      Format.fprintf fmt "port %d: fields %a key %s@ " port Nic.Field_set.pp field_set
        (Bitvec.to_hex key))
    t.rss;
  if t.constraints <> [] then
    Format.fprintf fmt "@[<v 2>constraints:@ %a@]@ "
      (Format.pp_print_list ~pp_sep:Format.pp_print_space Rs3.Cstr.pp)
      t.constraints;
  List.iter (fun w -> Format.fprintf fmt "warning: %s@ " w) t.warnings;
  Format.fprintf fmt "@]"
