(** The end-to-end Maestro pipeline (paper Fig. 1): exhaustive symbolic
    execution → stateful report → constraints generator → RS3 → code
    generation, with per-stage timing for the Fig. 6 experiment. *)

type request = {
  cores : int;
  nic : Nic.Model.t;
  strategy : [ `Auto | `Force_locks | `Force_tm | `Force_scr ];
      (** [`Auto] picks shared-nothing when possible (degrading down the
          {!Ladder} otherwise); the forced modes reproduce the paper's §6.4
          comparisons.  [`Force_scr] starts the ladder walk at the
          state-compute-replication rung: it is taken when
          {!Scrspec.admissible} accepts the NF and degrades further (lock,
          serial) when it does not. *)
  solver : Rs3.Solve.backend;
  seed : int;
  sat_budget : (int * int) option;
      (** Optional [(conflicts, propagations)] budget handed to the SAT
          backend of the RSS key search.  When the search exhausts it the
          pipeline does not fail: it walks down the degradation ladder
          (shared-nothing → lock-based → serial) and records the walk in
          {!outcome.ladder}.  A negative component means unlimited. *)
}

val default_request : request
(** 16 cores, the E810 NIC model, [`Auto] strategy, the Gaussian solver,
    no SAT budget. *)

(** Wall-clock seconds spent in each pipeline stage.  When telemetry is
    enabled the same figures appear as [pipeline/...] spans in
    {!Telemetry.snapshot}. *)
type timing = {
  symbex_s : float;
  report_s : float;
  sharding_s : float;
  solving_s : float;
  codegen_s : float;
}

val total_s : timing -> float
(** Sum of all stage timings. *)

(** Everything the pipeline produced: the executable {!Plan.t}, the
    sharding decision with its diagnostics, the stateful report it was
    derived from, stage timings, and the degradation-ladder walk that
    explains why this plan (and not a faster one) was chosen. *)
type outcome = {
  plan : Plan.t;
  decision : Sharding.decision;
  report : Report.t;
  timing : timing;
  ladder : Ladder.t;
}

val parallelize : ?request:request -> Dsl.Ast.t -> (outcome, string) result
(** The push-button entry point.  [Error] only for NFs that fail
    validation: every other adversity (no RSS key, solver budget
    exhausted, sharding blocked, more cores than NIC queues) degrades
    down the ladder instead of failing, so the plan always exists and
    always preserves the sequential NF's semantics. *)

val parallelize_exn : ?request:request -> Dsl.Ast.t -> outcome
(** Like {!parallelize} but raises [Failure] on error. *)
