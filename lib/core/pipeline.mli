(** The end-to-end Maestro pipeline (paper Fig. 1): exhaustive symbolic
    execution → stateful report → constraints generator → RS3 → code
    generation, with per-stage timing for the Fig. 6 experiment. *)

type request = {
  cores : int;
  nic : Nic.Model.t;
  strategy : [ `Auto | `Force_locks | `Force_tm ];
      (** [`Auto] picks shared-nothing when possible (falling back to locks
          otherwise); the forced modes reproduce the paper's §6.4
          comparisons. *)
  solver : Rs3.Solve.backend;
  seed : int;
}

val default_request : request
(** 16 cores, the E810 NIC model, [`Auto] strategy, the Gaussian solver. *)

(** Wall-clock seconds spent in each pipeline stage.  When telemetry is
    enabled the same figures appear as [pipeline/...] spans in
    {!Telemetry.snapshot}. *)
type timing = {
  symbex_s : float;
  report_s : float;
  sharding_s : float;
  solving_s : float;
  codegen_s : float;
}

val total_s : timing -> float
(** Sum of all stage timings. *)

(** Everything the pipeline produced: the executable {!Plan.t}, the
    sharding decision with its diagnostics, the stateful report it was
    derived from, and stage timings. *)
type outcome = {
  plan : Plan.t;
  decision : Sharding.decision;
  report : Report.t;
  timing : timing;
}

val parallelize : ?request:request -> Dsl.Ast.t -> (outcome, string) result
(** The push-button entry point.  [Error] only for NFs that fail validation
    or whose sharding solution the solver cannot realize on the NIC (those
    fall back to locks under [`Auto], so in practice errors mean malformed
    input). *)

val parallelize_exn : ?request:request -> Dsl.Ast.t -> outcome
(** Like {!parallelize} but raises [Failure] on error. *)
