(** The stateful report (SR) — paper §3.4.

    From the execution trees, every stateful call is catalogued and the
    objects are grouped into {e clusters}: flow tables whose map, dchain and
    vectors exchange indices through call results.  Accesses through such
    internal plumbing impose no sharding constraints of their own (the
    originating keyed access already decides the core); only the cluster's
    {e entry points} — keyed or packet-indexed accesses — matter to the
    Constraints Generator. *)

type role =
  | Keyed of Symbex.Sym.atom list
      (** an external access: the key (or packet-derived index) parts *)
  | Internal
      (** index/value plumbed from another call of the same cluster, or an
          allocator operation — imposes no constraint *)
  | Maintenance  (** expiry: per-shard aging preserves semantics *)

type entry = { call : Symbex.Tree.call; role : role; write : bool }

type cluster = {
  cid : int;
  objects : string list;  (** sorted member object names *)
  entries : entry list;
  read_only : bool;  (** no entry ever writes *)
}

type t = { model : Symbex.Exec.model; clusters : cluster list }

val build : Symbex.Exec.model -> t
(** Catalogue every stateful call in the execution trees and cluster the
    objects that exchange indices. *)

val stateless : t -> bool
(** [true] when the NF touches no state at all. *)

val writable_clusters : t -> cluster list
(** Clusters that are not read-only — the ones sharding must reason about
    (read-only objects are replicated and filtered out, paper §3.4). *)

val cluster_of_object : t -> string -> cluster option
(** The cluster containing the named state object, if any. *)

val pp : Format.formatter -> t -> unit
(** Renders the SR like the paper's Fig. 3 top half. *)
