open Dsl.Ast

let buf_add = Buffer.add_string

let c_field = function
  | Packet.Field.Eth_src -> "pkt->eth.src"
  | Packet.Field.Eth_dst -> "pkt->eth.dst"
  | Packet.Field.Eth_type -> "pkt->eth.type"
  | Packet.Field.Ip_src -> "pkt->ip.src"
  | Packet.Field.Ip_dst -> "pkt->ip.dst"
  | Packet.Field.Ip_proto -> "pkt->ip.proto"
  | Packet.Field.Src_port -> "pkt->l4.sport"
  | Packet.Field.Dst_port -> "pkt->l4.dport"
  | Packet.Field.Tunnel_id -> "pkt->tun.id"
  | Packet.Field.Inner_ip_src -> "pkt->inner.ip.src"
  | Packet.Field.Inner_ip_dst -> "pkt->inner.ip.dst"
  | Packet.Field.Inner_ip_proto -> "pkt->inner.ip.proto"
  | Packet.Field.Inner_src_port -> "pkt->inner.l4.sport"
  | Packet.Field.Inner_dst_port -> "pkt->inner.l4.dport"

let binop_c = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Land -> "&&"
  | Lor -> "||"

let rec c_expr = function
  | Const (_, v) -> string_of_int v
  | Field f -> c_field f
  | In_port -> "port"
  | Now -> "now"
  | Pkt_len -> "pkt->len"
  | Var x -> x
  | Record_field (r, f) -> Printf.sprintf "%s->%s" r f
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (c_expr a) (binop_c op) (c_expr b)
  | Not e -> Printf.sprintf "!%s" (c_expr e)
  | Cast (w, e) ->
      let ty = if w <= 8 then "uint8_t" else if w <= 16 then "uint16_t" else if w <= 32 then "uint32_t" else "uint64_t" in
      Printf.sprintf "(%s)%s" ty (c_expr e)

let c_key key =
  Printf.sprintf "KEY(%s)" (String.concat ", " (List.map c_expr key))

let instance suffix obj = obj ^ suffix

let rec c_stmt buf suffix indent stmt =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> buf_add buf (pad ^ s ^ "\n")) fmt in
  match stmt with
  | If (c, t, f) ->
      line "if (%s) {" (c_expr c);
      c_stmt buf suffix (indent + 2) t;
      line "} else {";
      c_stmt buf suffix (indent + 2) f;
      line "}"
  | Let (x, e, k) ->
      line "uint64_t %s = %s;" x (c_expr e);
      c_stmt buf suffix indent k
  | Map_get { obj; key; found; value; k } ->
      line "int %s; int %s = map_get(%s, %s, &%s);" value found (instance suffix obj)
        (c_key key) value;
      c_stmt buf suffix indent k
  | Map_put { obj; key; value; ok; k } ->
      line "int %s = map_put(%s, %s, %s);" ok (instance suffix obj) (c_key key) (c_expr value);
      c_stmt buf suffix indent k
  | Map_erase { obj; key; k } ->
      line "map_erase(%s, %s);" (instance suffix obj) (c_key key);
      c_stmt buf suffix indent k
  | Vec_get { obj; index; record; k } ->
      line "struct %s_rec *%s = vector_borrow(%s, %s);" obj record (instance suffix obj)
        (c_expr index);
      c_stmt buf suffix indent k
  | Vec_set { obj; index; fields; k } ->
      line "struct %s_rec *tmp_%s = vector_borrow(%s, %s);" obj obj (instance suffix obj)
        (c_expr index);
      List.iter (fun (f, e) -> line "tmp_%s->%s = %s;" obj f (c_expr e)) fields;
      line "vector_return(%s, %s, tmp_%s);" (instance suffix obj) (c_expr index) obj;
      c_stmt buf suffix indent k
  | Chain_alloc { obj; index; k_ok; k_fail } ->
      line "int %s;" index;
      line "if (dchain_allocate_new_index(%s, &%s, now)) {" (instance suffix obj) index;
      c_stmt buf suffix (indent + 2) k_ok;
      line "} else {";
      c_stmt buf suffix (indent + 2) k_fail;
      line "}"
  | Chain_rejuv { obj; index; k } ->
      line "dchain_rejuvenate_index(%s, %s, now);" (instance suffix obj) (c_expr index);
      c_stmt buf suffix indent k
  | Chain_expire { obj; purges; age_ns; k } ->
      List.iter
        (fun (m, v) ->
          line "expire_items_single_map(%s, %s, %s, now - %d);" (instance suffix obj)
            (instance suffix v) (instance suffix m) age_ns)
        purges;
      c_stmt buf suffix indent k
  | Sketch_touch { obj; key; k } ->
      line "sketch_touch(%s, %s);" (instance suffix obj) (c_key key);
      c_stmt buf suffix indent k
  | Sketch_query { obj; key; count; k } ->
      line "int %s = sketch_count(%s, %s);" count (instance suffix obj) (c_key key);
      c_stmt buf suffix indent k
  | Set_field (f, e, k) ->
      line "%s = %s;" (c_field f) (c_expr e);
      c_stmt buf suffix indent k
  | Forward e -> line "return forward(%s);" (c_expr e)
  | Drop -> line "return drop();"

let key_array name key =
  let bytes = Bitvec.to_bytes key in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "uint8_t %s[%d] = {\n " name (Bytes.length bytes));
  Bytes.iteri
    (fun i c ->
      Buffer.add_string buf (Printf.sprintf " 0x%02x," (Char.code c));
      if (i + 1) mod 8 = 0 then Buffer.add_string buf "\n ")
    bytes;
  Buffer.add_string buf "\n};\n";
  Buffer.contents buf

let field_set_flags fs =
  Nic.Field_set.slices fs
  |> List.map (fun (f, bits) ->
         let base =
           match f with
           | Packet.Field.Ip_src -> "ETH_RSS_IPV4 | ETH_RSS_L3_SRC_ONLY"
           | Packet.Field.Ip_dst -> "ETH_RSS_IPV4 | ETH_RSS_L3_DST_ONLY"
           | Packet.Field.Src_port -> "ETH_RSS_PORT | ETH_RSS_L4_SRC_ONLY"
           | Packet.Field.Dst_port -> "ETH_RSS_PORT | ETH_RSS_L4_DST_ONLY"
           | _ -> "0"
         in
         if bits < Packet.Field.width f then
           Printf.sprintf "%s /* flex-extract top %d bits */" base bits
         else base)
  |> List.sort_uniq String.compare |> String.concat " | "

let emit_rss_keys (plan : Plan.t) =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun port (r : Plan.port_rss) ->
      buf_add buf (key_array (Printf.sprintf "RSS_HASH_PORT_%d" port) r.Plan.key))
    plan.Plan.rss;
  Buffer.contents buf

let state_decl buf per_core (d : state_decl) =
  let star = if per_core then "*" else "" in
  match d with
  | Decl_map { name; capacity; _ } ->
      buf_add buf (Printf.sprintf "struct Map *%s%s;   /* capacity %d */\n" star name capacity)
  | Decl_vector { name; capacity; layout } ->
      buf_add buf
        (Printf.sprintf "struct Vector *%s%s; /* capacity %d, record {%s} */\n" star name
           capacity
           (String.concat ", " (List.map (fun (n, w) -> Printf.sprintf "%s:%d" n w) layout)))
  | Decl_chain { name; capacity } ->
      buf_add buf (Printf.sprintf "struct DoubleChain *%s%s; /* capacity %d */\n" star name capacity)
  | Decl_sketch { name; depth; width } ->
      buf_add buf (Printf.sprintf "struct Sketch *%s%s; /* %dx%d */\n" star name depth width)

let emit_c (plan : Plan.t) =
  let nf = plan.Plan.nf in
  let buf = Buffer.create 4096 in
  let per_core =
    match plan.Plan.strategy with
    | Plan.Shared_nothing | Plan.Scr -> true
    | Plan.Lock_based | Plan.Tm_based | Plan.Load_balance -> false
  in
  buf_add buf
    (Printf.sprintf
       "/* %s — parallel implementation generated by Maestro (%s, %d cores).\n"
       nf.name
       (Plan.strategy_name plan.Plan.strategy)
       plan.Plan.cores);
  List.iter (fun w -> buf_add buf (Printf.sprintf " * warning: %s\n" w)) plan.Plan.warnings;
  buf_add buf " */\n\n";
  (if per_core then buf_add buf "/* One state instance per worker core. */\n");
  List.iter (state_decl buf per_core) nf.state;
  buf_add buf "\n";
  buf_add buf (emit_rss_keys plan);
  buf_add buf "\n/* Run once per worker core. */\nint init(void) {\n";
  buf_add buf "  unsigned core_id = rte_lcore_id();\n";
  buf_add buf "  if (core_id == rte_get_main_lcore()) {\n";
  Array.iteri
    (fun port (r : Plan.port_rss) ->
      buf_add buf
        (Printf.sprintf "    rss_configure(%d, RSS_HASH_PORT_%d, %s);\n" port port
           (field_set_flags r.Plan.field_set)))
    plan.Plan.rss;
  buf_add buf "  }\n";
  let divisor = Plan.state_divisor plan in
  List.iter
    (fun d ->
      let name = decl_name d in
      let cap =
        match d with
        | Decl_map { capacity; _ } | Decl_vector { capacity; _ } | Decl_chain { capacity; _ }
          ->
            Some capacity
        | Decl_sketch _ -> None
      in
      match cap with
      | Some c when per_core ->
          buf_add buf
            (Printf.sprintf "  %s_init(&%s[core_id], %d);   /* %s */\n"
               (match d with
               | Decl_map _ -> "map"
               | Decl_vector _ -> "vector"
               | Decl_chain _ -> "dchain"
               | Decl_sketch _ -> "sketch")
               name
               (max 1 (c / divisor))
               (if divisor > 1 then Printf.sprintf "%d / %d cores" c divisor
                else "full replica per core"))
      | Some c ->
          buf_add buf
            (Printf.sprintf "  %s_init(&%s, %d);\n"
               (match d with
               | Decl_map _ -> "map"
               | Decl_vector _ -> "vector"
               | Decl_chain _ -> "dchain"
               | Decl_sketch _ -> "sketch")
               name c)
      | None -> buf_add buf (Printf.sprintf "  sketch_init(&%s);\n" name))
    nf.state;
  buf_add buf "  return 0;\n}\n\n";
  (match plan.Plan.strategy with
  | Plan.Lock_based ->
      buf_add buf
        "/* Speculative read path: process read-only under the core-local lock;\n\
        \ * on the first write, release, take all per-core locks in order, and\n\
        \ * restart the packet (paper §3.6). */\n"
  | Plan.Tm_based ->
      buf_add buf
        "/* Each packet runs as a restricted transaction (RTM); after 3 aborts\n\
        \ * fall back to a global lock. */\n"
  | Plan.Scr ->
      buf_add buf
        "/* State-compute replication: every core holds a FULL state replica.\n\
        \ * The dispatcher broadcasts a per-packet update digest over the SPSC\n\
        \ * rings; each core replays foreign packets' write-slices against its\n\
        \ * replica and runs the full NF only for packets it owns. */\n"
  | Plan.Shared_nothing | Plan.Load_balance -> ());
  buf_add buf "/* Run per packet on its worker core. */\n";
  buf_add buf "int process(int port, pkt_t *pkt, uint64_t now) {\n";
  (if per_core then buf_add buf "  unsigned core_id = rte_lcore_id();\n");
  let suffix = if per_core then "[core_id]" else "" in
  c_stmt buf suffix 2 nf.process;
  buf_add buf "}\n";
  Buffer.contents buf
