open Symbex

type blocked_reason =
  | Constant_key of { obj : string }
  | Allocator_key of { obj : string; detail : string }
  | Lossy_key of { obj : string; detail : string }
  | Non_rss_field of { obj : string; field : Packet.Field.t }
  | Mixed_key_pair of { obj : string }
  | Disjoint of {
      port : int;
      fields_a : Packet.Field.t list;
      fields_b : Packet.Field.t list;
      obj_a : string option;
      obj_b : string option;
    }

let pp_fields fmt fs =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Packet.Field.pp)
    fs

let pp_reason fmt = function
  | Constant_key { obj } ->
      Format.fprintf fmt
        "%s is keyed by a constant: every packet contends for the same state, so no RSS \
         configuration can steer related packets apart (R4)"
        obj
  | Allocator_key { obj; detail } ->
      Format.fprintf fmt
        "%s is keyed by %s, a value produced by the NF rather than by packet fields; RSS \
         cannot reproduce it (R4)"
        obj detail
  | Lossy_key { obj; detail } ->
      Format.fprintf fmt
        "%s is indexed through %s, a non-injective derivation of packet fields; distinct \
         packets sharing the index may hash apart (R4)"
        obj detail
  | Non_rss_field { obj; field } ->
      Format.fprintf fmt "%s is keyed by %s, which RSS cannot hash on this NIC (R4)" obj
        (Packet.Field.to_string field)
  | Mixed_key_pair { obj } ->
      Format.fprintf fmt
        "two accesses to %s align a packet field with a constant; RSS cannot steer on \
         specific field values (R4)"
        obj
  | Disjoint { port; fields_a; fields_b; obj_a; obj_b } ->
      let witness fmt = function
        | Some obj -> Format.fprintf fmt " (%s)" obj
        | None -> ()
      in
      Format.fprintf fmt
        "port %d must shard simultaneously on %a%a and on %a%a, which share no field: RSS \
         can only hash one set per port (R3)"
        port pp_fields fields_a witness obj_a pp_fields fields_b witness obj_b

type decision =
  | No_state
  | Read_only
  | Shard of Rs3.Cstr.t list
  | Blocked of blocked_reason list

let c_clusters = Telemetry.Counter.make "sharding.writable_clusters" ~doc:"clusters sharding reasons about"
let c_raw = Telemetry.Counter.make "sharding.constraints_raw" ~doc:"pairwise constraints before R2/R3 pruning"
let c_constraints = Telemetry.Counter.make "sharding.constraints" ~doc:"constraints surviving pruning"
let c_blocked = Telemetry.Counter.make "sharding.blocked_reasons" ~doc:"R3/R4 reasons blocking shared-nothing"
let c_rescues = Telemetry.Counter.make "sharding.r5_rescues" ~doc:"objects re-keyed by rule R5"

(* --- entry resolution ----------------------------------------------------- *)

type tuple = { t_port : int; atoms : Sym.atom list }

(* Classify one keyed entry: a usable tuple or a blocking reason. *)
let resolve_entry (e : Report.entry) atoms =
  let obj = e.Report.call.Tree.obj in
  let problems =
    List.filter_map
      (fun a ->
        match a with
        | Sym.A_field f when not (Packet.Field.rss_capable f) ->
            Some (Non_rss_field { obj; field = f })
        | Sym.A_prefix (f, _) when not (Packet.Field.rss_capable f) ->
            Some (Non_rss_field { obj; field = f })
        | Sym.A_field _ | Sym.A_prefix _ | Sym.A_const _ -> None
        | Sym.A_opaque s ->
            let detail = Format.asprintf "%a" Sym.pp s in
            if Sym.calls s <> [] then Some (Allocator_key { obj; detail })
            else if Sym.fields s <> [] then Some (Lossy_key { obj; detail })
            else Some (Allocator_key { obj; detail }))
      atoms
  in
  match problems with
  | p :: _ -> Error p
  | [] ->
      if List.exists (function Sym.A_field _ | Sym.A_prefix _ -> true | _ -> false) atoms
      then Ok { t_port = e.Report.call.Tree.port; atoms }
      else Error (Constant_key { obj })

(* --- rule R5: interchangeable constraints ---------------------------------- *)

(* Flatten a guard condition into (vector, record field, packet field)
   equalities; [None] when the condition has any other shape. *)
let parse_guard vid cond =
  let rec conjuncts c =
    match c with
    | Sym.Bin (Dsl.Ast.Land, a, b) -> Option.bind (conjuncts a) (fun xs ->
        Option.map (fun ys -> xs @ ys) (conjuncts b))
    | Sym.Bin (Dsl.Ast.Eq, a, b) -> (
        let record_vs_other =
          match (a, b) with
          | Sym.Record (id, v, rf), other when id = vid -> Some (v, rf, other)
          | other, Sym.Record (id, v, rf) when id = vid -> Some (v, rf, other)
          | _ -> None
        in
        match record_vs_other with
        | Some (v, rf, other) -> (
            match Sym.classify other with
            | Sym.A_field g -> Some [ (v, rf, g) ]
            | Sym.A_prefix _ | Sym.A_const _ | Sym.A_opaque _ -> None)
        | None -> None)
    | _ -> None
  in
  conjuncts cond

let drop_only t = Tree.leaf_action_set t = [ Tree.Drop ]

(* What a map_get's continuation tells us about re-keying (paper Fig. 2 ⑤
   and the NAT, §6.1). *)
type read_shape =
  | Guarded of string * (string * Packet.Field.t) list
      (** vector checked, (record field, packet field) guard list: a lookup
          whose entry is pinned to packet fields, mismatch ≡ miss *)
  | Irrelevant
      (** found and miss paths are observably identical: the read only
          gates an insertion *)
  | Opaque_read

let read_shape_of (model : Exec.model) (e : Report.entry) =
  let call = e.Report.call in
  let tree = model.Exec.trees.(call.Tree.port) in
  match Tree.continuation_of_call tree call.Tree.id with
  | None -> Opaque_read
  | Some cont -> (
      let found_sym = Sym.Call (call.Tree.id, "found") in
      match Tree.find_branch cont (Sym.equal found_sym) with
      | None -> Opaque_read
      | Some (_, t_found, t_miss) -> (
          (* case A: a vec_get on the looked-up index followed by a guard
             whose mismatch behaves exactly like the miss *)
          let vec_reads =
            List.filter
              (fun (c : Tree.call) ->
                c.Tree.kind = Dsl.Interp.Op_vec_get
                &&
                match c.Tree.index with
                | Some idx -> List.mem call.Tree.id (Sym.calls idx)
                | None -> false)
              (Tree.all_calls t_found)
          in
          let guarded =
            List.find_map
              (fun (v : Tree.call) ->
                match
                  Tree.find_branch t_found (fun cond ->
                      Option.is_some (parse_guard v.Tree.id cond))
                with
                | Some (cond, _, t_bad) -> (
                    match parse_guard v.Tree.id cond with
                    | Some gs when drop_only t_bad && drop_only t_miss ->
                        let vec = v.Tree.obj in
                        if List.for_all (fun (v', _, _) -> String.equal v' vec) gs then
                          Some (Guarded (vec, List.map (fun (_, rf, g) -> (rf, g)) gs))
                        else None
                    | _ -> None)
                | None -> None)
              vec_reads
          in
          match guarded with
          | Some g -> g
          | None ->
              (* case B: the lookup's outcome is unobservable *)
              if Tree.leaf_action_set t_found = Tree.leaf_action_set t_miss then Irrelevant
              else Opaque_read))

(* Fields stored into each vector record field from packet fields, per
   cluster: the writer side of R5. *)
let stored_fields (cluster : Report.cluster) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Report.entry) ->
      if e.Report.call.Tree.kind = Dsl.Interp.Op_vec_set then
        List.iter
          (fun (rf, sym) ->
            match Sym.classify sym with
            | Sym.A_field h ->
                let key = (e.Report.call.Tree.obj, rf) in
                (match Hashtbl.find_opt tbl key with
                | Some (Some h') when not (Packet.Field.equal h h') ->
                    (* ambiguous provenance: poison the slot *)
                    Hashtbl.replace tbl key None
                | Some _ -> ()
                | None -> Hashtbl.replace tbl key (Some h))
            | _ -> ())
          e.Report.call.Tree.stored)
    cluster.Report.entries;
  fun vec rf -> Option.join (Hashtbl.find_opt tbl (vec, rf))

(* Attempt to re-key every entry of one object.  Returns the rewritten
   (entry, tuple) list or the reason it cannot be done. *)
let rescue_object model (cluster : Report.cluster) entries first_problem =
  let store = stored_fields cluster in
  let layout_order vec rfs =
    match Dsl.Check.layout_of_object model.Exec.info vec with
    | layout -> List.filter (fun (n, _) -> List.mem_assoc n rfs) layout |> List.map fst
    | exception Not_found -> List.map fst rfs
  in
  (* one reader must exhibit the guard to define the re-keying shape *)
  let shapes = List.map (fun e -> (e, read_shape_of model e)) entries in
  let guard_spec =
    List.find_map (function _, Guarded (v, gs) -> Some (v, gs) | _ -> None) shapes
  in
  match guard_spec with
  | None -> Error first_problem
  | Some (vec, gs) -> (
      let rf_order = layout_order vec gs in
      if List.length rf_order <> List.length gs then Error first_problem
      else
        let writer_tuple port =
          let fields = List.map (fun rf -> store vec rf) rf_order in
          if List.for_all Option.is_some fields then
            Some
              { t_port = port; atoms = List.map (fun f -> Sym.A_field (Option.get f)) fields }
          else None
        in
        let rewrite (e, shape) =
          let port = e.Report.call.Tree.port in
          match (e.Report.call.Tree.kind, shape) with
          | Dsl.Interp.Op_map_get, Guarded (v, gs') when String.equal v vec ->
              let atoms =
                List.filter_map
                  (fun rf -> Option.map (fun g -> Sym.A_field g) (List.assoc_opt rf gs'))
                  rf_order
              in
              if List.length atoms = List.length rf_order then Some { t_port = port; atoms }
              else None
          | Dsl.Interp.Op_map_get, Irrelevant -> writer_tuple port
          | Dsl.Interp.Op_map_get, (Guarded _ | Opaque_read) -> None
          | (Dsl.Interp.Op_map_put | Dsl.Interp.Op_map_erase), _ -> writer_tuple port
          | _ -> None
        in
        let rewritten = List.map rewrite shapes in
        if List.for_all Option.is_some rewritten then
          Ok (List.map2 (fun e t -> (e, Option.get t)) entries rewritten)
        else Error first_problem)

(* --- constraint generation ------------------------------------------------ *)

let pair_constraints obj tuples =
  (* dedupe structurally first: identical accesses add nothing *)
  let tuples = List.sort_uniq Stdlib.compare tuples in
  let n = List.length tuples in
  let arr = Array.of_list tuples in
  let out = ref [] and problem = ref None in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      if !problem = None then begin
        let a = arr.(i) and b = arr.(j) in
        let vacuous = ref false and pairs = ref [] in
        List.iter2
          (fun aa ab ->
            match (aa, ab) with
            | Sym.A_field fa, Sym.A_field fb ->
                let bits = min (Packet.Field.width fa) (Packet.Field.width fb) in
                pairs := { Rs3.Cstr.fa; fb; bits } :: !pairs
            | Sym.A_prefix (fa, ba), Sym.A_prefix (fb, bb) ->
                pairs := { Rs3.Cstr.fa; fb; bits = min ba bb } :: !pairs
            | Sym.A_const (wa, va), Sym.A_const (wb, vb) ->
                if wa <> wb || va <> vb then vacuous := true
            | (Sym.A_field _ | Sym.A_prefix _), (Sym.A_const _ | Sym.A_prefix _ | Sym.A_field _)
            | Sym.A_const _, (Sym.A_field _ | Sym.A_prefix _) ->
                problem := Some (Mixed_key_pair { obj })
            | Sym.A_opaque _, _ | _, Sym.A_opaque _ -> assert false)
          a.atoms b.atoms;
        if (not !vacuous) && !problem = None && !pairs <> [] then
          out :=
            Rs3.Cstr.make_sliced ~port_a:a.t_port ~port_b:b.t_port (List.rev !pairs) :: !out
      end
    done
  done;
  match !problem with Some p -> Error p | None -> Ok !out

(* --- R2/R3: per-port field pruning ---------------------------------------- *)

(* S_p := the intersection of every constraint's field requirement at port
   p — per field, the fewest leading bits any constraint demands (rule R2:
   the coarser requirement wins; a /8 sketch level subsumes a /16 one).
   Then prune cross-port pairs to the surviving fields, iterating, since
   removing a field on one port removes its counterpart on the other. *)
(* [tagged] carries each constraint's owning state object so an R3
   verdict can name the two witnesses — for a composed chain the
   namespaced object names identify the offending stage pair. *)
let prune_constraints nports tagged =
  let constraints = List.map snd tagged in
  let module FS = Set.Make (Packet.Field) in
  let bits_at port (c : Rs3.Cstr.t) f =
    List.filter_map
      (fun { Rs3.Cstr.fa; fb; bits } ->
        let hits =
          (c.Rs3.Cstr.port_a = port && Packet.Field.equal fa f)
          || (c.Rs3.Cstr.port_b = port && Packet.Field.equal fb f)
        in
        if hits then Some bits else None)
      c.Rs3.Cstr.pairs
    |> List.fold_left max 0
  in
  let s = Array.make nports None in
  List.iter
    (fun (c : Rs3.Cstr.t) ->
      List.iter
        (fun port ->
          let fields = FS.of_list (Rs3.Cstr.fields_of_port c port) in
          if not (FS.is_empty fields) then
            s.(port) <-
              (match s.(port) with
              | None -> Some (fields, fields)
              | Some (acc, _) -> Some (FS.inter acc fields, fields)))
        (List.sort_uniq Int.compare [ c.Rs3.Cstr.port_a; c.Rs3.Cstr.port_b ]))
    constraints;
  (* coarsest prefix per surviving field and port *)
  let min_bits = Hashtbl.create 16 in
  List.iter
    (fun (c : Rs3.Cstr.t) ->
      List.iter
        (fun port ->
          List.iter
            (fun f ->
              let b = bits_at port c f in
              if b > 0 then
                match Hashtbl.find_opt min_bits (port, f) with
                | Some b' when b' <= b -> ()
                | _ -> Hashtbl.replace min_bits (port, f) b)
            (Rs3.Cstr.fields_of_port c port))
        (List.sort_uniq Int.compare [ c.Rs3.Cstr.port_a; c.Rs3.Cstr.port_b ]))
    constraints;
  (* detect empty intersections up front: that is rule R3 *)
  let r3 = ref None in
  Array.iteri
    (fun port v ->
      match v with
      | Some (acc, last) when FS.is_empty acc && !r3 = None ->
          (* recover two witness sets (and their owning objects) for the
             warning *)
          let sets =
            List.filter_map
              (fun (obj, (c : Rs3.Cstr.t)) ->
                let fs = Rs3.Cstr.fields_of_port c port in
                if fs = [] then None else Some (obj, fs))
              tagged
          in
          let obj_a, a =
            match sets with
            | (o, x) :: _ -> (Some o, x)
            | [] -> (None, FS.elements last)
          in
          let obj_b, b =
            match
              List.find_opt
                (fun (_, x) -> FS.is_empty (FS.inter (FS.of_list x) (FS.of_list a)))
                sets
            with
            | Some (o, x) -> (Some o, x)
            | None -> (None, FS.elements last)
          in
          r3 := Some (Disjoint { port; fields_a = a; fields_b = b; obj_a; obj_b })
      | _ -> ())
    s;
  match !r3 with
  | Some d -> Error d
  | None ->
      let keep = Array.map (function Some (acc, _) -> acc | None -> FS.empty) s in
      (* iterate pair pruning to a fixpoint *)
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (c : Rs3.Cstr.t) ->
            List.iter
              (fun { Rs3.Cstr.fa; fb; _ } ->
                let ina = FS.mem fa keep.(c.Rs3.Cstr.port_a)
                and inb = FS.mem fb keep.(c.Rs3.Cstr.port_b) in
                if ina && not inb then begin
                  keep.(c.Rs3.Cstr.port_a) <- FS.remove fa keep.(c.Rs3.Cstr.port_a);
                  changed := true
                end
                else if inb && not ina then begin
                  keep.(c.Rs3.Cstr.port_b) <- FS.remove fb keep.(c.Rs3.Cstr.port_b);
                  changed := true
                end)
              c.Rs3.Cstr.pairs)
          constraints
      done;
      (* a port whose fields all vanished during pruning is R3 as well *)
      let dead = ref None in
      Array.iteri
        (fun port v ->
          if !dead = None && v <> None && FS.is_empty keep.(port) then
            dead :=
              Some
                (Disjoint
                   {
                     port;
                     fields_a = (match v with Some (_, l) -> FS.elements l | None -> []);
                     fields_b = [];
                     obj_a =
                       Option.map fst
                         (List.find_opt
                            (fun (_, c) -> Rs3.Cstr.fields_of_port c port <> [])
                            tagged);
                     obj_b = None;
                   }))
        s;
      (match !dead with
      | Some d -> Error d
      | None ->
          let restricted =
            List.filter_map
              (fun (c : Rs3.Cstr.t) ->
                let pairs =
                  List.filter_map
                    (fun { Rs3.Cstr.fa; fb; bits } ->
                      if
                        FS.mem fa keep.(c.Rs3.Cstr.port_a)
                        && FS.mem fb keep.(c.Rs3.Cstr.port_b)
                      then
                        let ba =
                          Option.value ~default:bits
                            (Hashtbl.find_opt min_bits (c.Rs3.Cstr.port_a, fa))
                        in
                        let bb =
                          Option.value ~default:bits
                            (Hashtbl.find_opt min_bits (c.Rs3.Cstr.port_b, fb))
                        in
                        Some { Rs3.Cstr.fa; fb; bits = min bits (min ba bb) }
                      else None)
                    c.Rs3.Cstr.pairs
                in
                if pairs = [] then None
                else
                  Some
                    (Rs3.Cstr.make_sliced ~port_a:c.Rs3.Cstr.port_a ~port_b:c.Rs3.Cstr.port_b
                       pairs))
              constraints
          in
          Ok (List.sort_uniq Stdlib.compare restricted))

(* --- the decision ---------------------------------------------------------- *)

let decide (report : Report.t) =
  if Report.stateless report then No_state
  else
    match Report.writable_clusters report with
    | [] -> Read_only
    | clusters -> (
        Telemetry.Counter.add c_clusters (List.length clusters);
        let model = report.Report.model in
        let nports = model.Exec.nf.Dsl.Ast.devices in
        let reasons = ref [] in
        let all_constraints = ref [] in
        List.iter
          (fun (cluster : Report.cluster) ->
            (* group keyed entries per object *)
            let by_obj = Hashtbl.create 8 in
            List.iter
              (fun (e : Report.entry) ->
                match e.Report.role with
                | Report.Keyed atoms ->
                    let obj = e.Report.call.Tree.obj in
                    let cur = Option.value ~default:[] (Hashtbl.find_opt by_obj obj) in
                    Hashtbl.replace by_obj obj ((e, atoms) :: cur)
                | Report.Internal | Report.Maintenance -> ())
              cluster.Report.entries;
            Hashtbl.iter
              (fun obj entries ->
                let entries = List.rev entries in
                let resolved = List.map (fun (e, atoms) -> (e, resolve_entry e atoms)) entries in
                let first_problem =
                  List.find_map (function _, Error p -> Some p | _ -> None) resolved
                in
                let tuples =
                  match first_problem with
                  | None -> Ok (List.map (function _, Ok t -> t | _ -> assert false) resolved)
                  | Some p -> (
                      match rescue_object model cluster (List.map fst entries) p with
                      | Ok rewritten ->
                          Telemetry.Counter.incr c_rescues;
                          Ok (List.map snd rewritten)
                      | Error reason -> Error reason)
                in
                match tuples with
                | Error reason -> reasons := reason :: !reasons
                | Ok tuples -> (
                    match pair_constraints obj tuples with
                    | Error p -> reasons := p :: !reasons
                    | Ok cs ->
                        all_constraints := List.map (fun c -> (obj, c)) cs @ !all_constraints))
              by_obj)
          clusters;
        if !reasons <> [] then begin
          Telemetry.Counter.add c_blocked (List.length !reasons);
          Blocked (List.rev !reasons)
        end
        else begin
          Telemetry.Counter.add c_raw (List.length !all_constraints);
          match prune_constraints nports !all_constraints with
          | Error d ->
              Telemetry.Counter.incr c_blocked;
              Blocked [ d ]
          | Ok constraints ->
              Telemetry.Counter.add c_constraints (List.length constraints);
              Shard constraints
        end)

let pp_decision fmt = function
  | No_state -> Format.pp_print_string fmt "stateless: RSS load-balances freely"
  | Read_only -> Format.pp_print_string fmt "all state read-only: RSS load-balances freely"
  | Shard cs ->
      Format.fprintf fmt "@[<v 2>shared-nothing with constraints:@ %a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Rs3.Cstr.pp)
        cs
  | Blocked reasons ->
      Format.fprintf fmt "@[<v 2>shared-nothing impossible:@ %a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_reason)
        reasons
