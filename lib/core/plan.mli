(** A parallelization plan: everything the generated parallel NF needs —
    the strategy, per-port RSS configurations, and the state layout rules.
    This is the "generated implementation" in data form; {!Codegen} renders
    it as runnable per-core workers and as C-like source (paper Fig. 13). *)

type strategy =
  | Shared_nothing
      (** per-core state instances, capacities divided, no coordination *)
  | Scr
      (** state-compute replication: per-core {e full} replicas, every
          core replays the other cores' state updates from a per-packet
          digest broadcast by the dispatcher — no shared writes, no
          locks ({!Scrspec}) *)
  | Lock_based
      (** one shared state, the custom per-core read/write lock, speculative
          read → restart-on-write, per-core aging for rejuvenation (§3.6) *)
  | Tm_based
      (** one shared state, restricted transactions with retry and global
          fallback lock (§6) *)
  | Load_balance
      (** no writable state: RSS spreads traffic, state is replicated
          read-only *)

val strategy_name : strategy -> string
(** Short human-readable name ("shared-nothing", "locks", ...). *)

(** One port's RSS configuration: the 52-byte Toeplitz key and the packet
    fields it hashes. *)
type port_rss = { key : Bitvec.t; field_set : Nic.Field_set.t }

type t = {
  nf : Dsl.Ast.t;
  cores : int;
  nic : Nic.Model.t;
  strategy : strategy;
  rss : port_rss array;  (** one configuration per device *)
  constraints : Rs3.Cstr.t list;  (** provenance: the sharding solution *)
  warnings : string list;  (** Maestro's feedback to the developer *)
}

val rss_engine : ?reta:Nic.Reta.t -> t -> int -> Nic.Rss.t
(** The configured RSS engine for one port, defaulting to a round-robin
    indirection table over [cores] queues. *)

val state_divisor : t -> int
(** How much each per-core instance's capacity is divided by: [cores] for
    shared-nothing (total memory constant, §4), 1 otherwise — including
    SCR, whose per-core instances are {e full} replicas (memory scales
    with cores; that is the price of zero coordination). *)

val pp : Format.formatter -> t -> unit
(** Human-readable plan summary: strategy, keys, warnings. *)
