(** The Constraints Generator (paper §3.4): from the stateful report to a
    shared-nothing sharding solution, or a precise explanation of why none
    exists.

    The rules, as implemented:

    - {b R1 key equality}: every pair of keyed accesses to one object yields
      the constraint that packets producing equal keys meet on one core;
      slot-wise pairing of the key tuples generalizes this across ports
      (the firewall's LAN/WAN symmetry falls out here).
    - {b R2 subsumption}: not a separate pass — all pairwise constraints are
      emitted and the window equations make the coarser requirement zero out
      the finer one (hashing only the subsumed fields satisfies both).
    - {b R3 disjoint dependencies}: two independent state objects whose
      requirements share no packet field cannot both steer RSS; detected
      directly (and, as a backstop, by the solver's degenerate-hash
      rejection).
    - {b R4 incompatible dependencies}: keys with no packet fields at all
      (constants, allocator results), keys through lossy derivations, and
      keys over fields RSS cannot hash (MACs) block sharding.
    - {b R5 interchangeable constraints}: an R4-blocked object can still be
      sharded when lookups pin the stored entry against packet fields and a
      mismatch is observably identical to a miss; the guarded fields (reader
      side) and the fields they were stored from (writer side) replace the
      blocked key.  This is how the NAT shards on the external server and
      how Fig. 2's scenario ⑤ shards on the IP instead of the MAC.

    Soundness note on R5: re-keying may let different cores hold entries the
    sequential NF would have coalesced (e.g. one MAC registered on two
    cores, or the same external port allocated by two cores).  The guard
    makes the difference unobservable on the read path, and the paper
    accepts the same relaxation for the NAT's port uniqueness (§6.1); the
    write-side divergence is of the same kind as the capacity-split
    semantics of sharding (§4). *)

type blocked_reason =
  | Constant_key of { obj : string }
      (** the key never depends on the packet (Fig. 2 ④, global counters) *)
  | Allocator_key of { obj : string; detail : string }
      (** the key derives from call results (the NAT's port map before R5) *)
  | Lossy_key of { obj : string; detail : string }
      (** packet fields enter the key only through a non-injective
          derivation (the LB's slot choice) *)
  | Non_rss_field of { obj : string; field : Packet.Field.t }
      (** keyed by a field no RSS configuration can hash (bridges) *)
  | Mixed_key_pair of { obj : string }
      (** a field aligns with a constant across two accesses *)
  | Disjoint of {
      port : int;
      fields_a : Packet.Field.t list;
      fields_b : Packet.Field.t list;
      obj_a : string option;
      obj_b : string option;
    }
      (** R3: requirements with no common field on one port.  [obj_a]/[obj_b]
          name the state objects that contributed the two witness
          requirements when they are known — for a composed service chain
          the namespaced object names identify the offending stage pair. *)

val pp_reason : Format.formatter -> blocked_reason -> unit
(** The user-facing warning of Fig. 2. *)

type decision =
  | No_state  (** stateless NF: RSS for pure load balancing *)
  | Read_only  (** all state read-only: RSS for pure load balancing *)
  | Shard of Rs3.Cstr.t list
      (** shared-nothing is possible under these constraints *)
  | Blocked of blocked_reason list
      (** shared-nothing impossible; fall back to locks *)

val decide : Report.t -> decision
(** Apply R1–R5 to every writable cluster of the report.  Also feeds the
    [sharding.*] telemetry counters when collection is enabled. *)

val pp_decision : Format.formatter -> decision -> unit
(** The decision plus each blocked reason, as the CLI prints it. *)
