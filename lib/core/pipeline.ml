type request = {
  cores : int;
  nic : Nic.Model.t;
  strategy : [ `Auto | `Force_locks | `Force_tm | `Force_scr ];
  solver : Rs3.Solve.backend;
  seed : int;
  sat_budget : (int * int) option;
}

let default_request =
  {
    cores = 16;
    nic = Nic.Model.E810;
    strategy = `Auto;
    solver = `Gauss;
    seed = 0xbeef;
    sat_budget = None;
  }

type timing = {
  symbex_s : float;
  report_s : float;
  sharding_s : float;
  solving_s : float;
  codegen_s : float;
}

let total_s t = t.symbex_s +. t.report_s +. t.sharding_s +. t.solving_s +. t.codegen_s

type outcome = {
  plan : Plan.t;
  decision : Sharding.decision;
  report : Report.t;
  timing : timing;
  ladder : Ladder.t;
}

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = Telemetry.Span.with_span name f in
  (r, Unix.gettimeofday () -. t0)

let random_rss rng nic nf =
  Array.init nf.Dsl.Ast.devices (fun _ ->
      { Plan.key = Nic.Rss.random_key rng nic; field_set = Nic.Field_set.ipv4_tcp })

(* The degradation ladder below the shared-nothing rung (paper §4.4:
   maintain semantics at lower speed), with the state-compute-replication
   rung of Xu et al. (arXiv 2309.14647) between sharding and the lock.
   Both the SCR and lock rungs still need multi-queue dispatch — one
   queue per core — so they are only feasible when the NIC has that many
   queues and more than one core is requested; otherwise the plan
   degrades to explicit serial execution on one core.

   [scr_reject] short-circuits the SCR rung for an external reason (a
   forced lock plan); otherwise the rung is taken exactly when
   {!Scrspec.admissible} finds a digest within the replication budget. *)
let degraded_steps request nf ~top_reason ~scr_reject =
  let max_q = Nic.Model.max_queues request.nic in
  let top = { Ladder.rung = Ladder.Shared_nothing; taken = false; reason = top_reason } in
  let serial =
    {
      Ladder.rung = Ladder.Serial;
      taken = true;
      reason = "single-core execution preserves semantics at sequential speed";
    }
  in
  if request.cores > max_q then
    let queues =
      Printf.sprintf "%d cores exceed the %s's %d RSS queues" request.cores
        (Nic.Model.name request.nic) max_q
    in
    [
      top;
      { Ladder.rung = Ladder.Scr; taken = false; reason = queues };
      { Ladder.rung = Ladder.Lock_based; taken = false; reason = queues };
      serial;
    ]
  else if request.cores <= 1 then
    [
      top;
      {
        Ladder.rung = Ladder.Scr;
        taken = false;
        reason = "replicating state to a single core is just serial execution";
      };
      {
        Ladder.rung = Ladder.Lock_based;
        taken = false;
        reason = "a single-core request leaves nothing to lock against";
      };
      serial;
    ]
  else
    let scr_step =
      match scr_reject with
      | Some reason -> { Ladder.rung = Ladder.Scr; taken = false; reason }
      | None -> (
          match Scrspec.admissible nf with
          | Ok spec ->
              {
                Ladder.rung = Ladder.Scr;
                taken = true;
                reason =
                  Printf.sprintf
                    "full state replica per core, replaying a %d-byte/pkt update digest"
                    spec.Scrspec.digest_bytes;
              }
          | Error e -> { Ladder.rung = Ladder.Scr; taken = false; reason = e })
    in
    if scr_step.Ladder.taken then [ top; scr_step ]
    else
      [
        top;
        scr_step;
        {
          Ladder.rung = Ladder.Lock_based;
          taken = true;
          reason = "shared state serialized behind the reader-writer lock";
        };
      ]

let parallelize ?(request = default_request) nf =
  Telemetry.Span.with_span "pipeline" @@ fun () ->
  match Dsl.Check.check nf with
  | Error errs -> Error (String.concat "; " errs)
  | Ok _ ->
      let rng = Random.State.make [| request.seed |] in
      let model, symbex_s = timed "symbex" (fun () -> Symbex.Exec.run nf) in
      let report, report_s = timed "report" (fun () -> Report.build model) in
      let decision, sharding_s = timed "sharding" (fun () -> Sharding.decide report) in
      let warnings_of_blocked reasons =
        List.map (Format.asprintf "%a" Sharding.pp_reason) reasons
      in
      let mk ?cores strategy rss constraints warnings ladder solving_s =
        let cores = Option.value ~default:request.cores cores in
        let plan, codegen_s =
          timed "codegen" (fun () ->
              {
                Plan.nf;
                cores;
                nic = request.nic;
                strategy;
                rss;
                constraints;
                warnings;
              })
        in
        Ok
          {
            plan;
            decision;
            report;
            timing = { symbex_s; report_s; sharding_s; solving_s; codegen_s };
            ladder;
          }
      in
      (* Walk the ladder below shared-nothing: SCR when the update digest
         fits the replication budget, lock-based when multi-queue dispatch
         works, serial (one core, no lock contention) otherwise. *)
      let degrade ?scr_reject ~top_reason warnings solving_s =
        let ladder = Ladder.make (degraded_steps request nf ~top_reason ~scr_reject) in
        let warnings =
          warnings
          @ List.filter_map
              (fun (s : Ladder.step) ->
                if s.Ladder.taken then None
                else Some (Printf.sprintf "%s unavailable: %s" (Ladder.rung_name s.Ladder.rung) s.Ladder.reason))
              ladder.Ladder.steps
        in
        match ladder.Ladder.chosen with
        | Ladder.Serial ->
            mk ~cores:1 Plan.Lock_based (random_rss rng request.nic nf) [] warnings ladder
              solving_s
        | Ladder.Scr ->
            mk Plan.Scr (random_rss rng request.nic nf) [] warnings ladder solving_s
        | Ladder.Shared_nothing | Ladder.Lock_based ->
            mk Plan.Lock_based (random_rss rng request.nic nf) [] warnings ladder solving_s
      in
      let max_q = Nic.Model.max_queues request.nic in
      if request.cores > max_q then
        (* no strategy can steer to more queues than the NIC has: even the
           shared-nothing plan would be unrealizable at dispatch time *)
        degrade
          ~top_reason:
            (Printf.sprintf "%d cores exceed the %s's %d RSS queues" request.cores
               (Nic.Model.name request.nic) max_q)
          [] 0.
      else
      (match (request.strategy, decision) with
      | `Force_locks, _ ->
          degrade ~scr_reject:"lock-based parallelization forced"
            ~top_reason:"lock-based parallelization forced"
            [ "lock-based parallelization forced" ] 0.
      | `Force_scr, _ ->
          degrade ~top_reason:"state-compute replication forced"
            [ "state-compute replication forced" ] 0.
      | `Force_tm, _ ->
          mk Plan.Tm_based (random_rss rng request.nic nf) []
            [ "transactional-memory parallelization forced" ]
            (Ladder.top "transactional-memory parallelization forced")
            0.
      | `Auto, Sharding.No_state ->
          mk Plan.Load_balance (random_rss rng request.nic nf) [] []
            (Ladder.top "stateless NF: RSS load-balances without constraints")
            0.
      | `Auto, Sharding.Read_only ->
          mk Plan.Load_balance (random_rss rng request.nic nf) []
            [ "state is read-only and will be replicated per core" ]
            (Ladder.top "read-only state replicated per core")
            0.
      | `Auto, Sharding.Blocked reasons ->
          degrade
            ~top_reason:
              (String.concat "; " ("sharding blocked" :: warnings_of_blocked reasons))
            (warnings_of_blocked reasons) 0.
      | `Auto, Sharding.Shard constraints -> (
          let solved, solving_s =
            timed "solving" (fun () ->
                match
                  Rs3.Problem.for_constraints ~nic:request.nic ~nports:nf.Dsl.Ast.devices
                    constraints
                with
                | Error e -> Error (Rs3.Solve.Infeasible, e)
                | Ok problem -> (
                    match
                      Rs3.Solve.solve ~backend:request.solver ~seed:request.seed
                        ?budget:request.sat_budget problem
                    with
                    | Error e -> Error e
                    | Ok sol -> Ok (problem, sol)))
          in
          match solved with
          | Error (kind, e) ->
              let top_reason =
                match kind with
                | Rs3.Solve.Budget_exhausted -> Printf.sprintf "key search gave up: %s" e
                | Rs3.Solve.Infeasible ->
                    Printf.sprintf "sharding solution found but unrealizable on the NIC: %s" e
              in
              degrade ~top_reason [ top_reason ] solving_s
          | Ok (problem, sol) ->
              let rss =
                Array.mapi
                  (fun port key ->
                    { Plan.key; field_set = problem.Rs3.Problem.field_sets.(port) })
                  sol.Rs3.Solve.keys
              in
              mk Plan.Shared_nothing rss constraints []
                (Ladder.top "RSS key found: state shards across cores")
                solving_s))

let parallelize_exn ?request nf =
  match parallelize ?request nf with Ok o -> o | Error e -> invalid_arg e
