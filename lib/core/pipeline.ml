type request = {
  cores : int;
  nic : Nic.Model.t;
  strategy : [ `Auto | `Force_locks | `Force_tm ];
  solver : Rs3.Solve.backend;
  seed : int;
}

let default_request =
  { cores = 16; nic = Nic.Model.E810; strategy = `Auto; solver = `Gauss; seed = 0xbeef }

type timing = {
  symbex_s : float;
  report_s : float;
  sharding_s : float;
  solving_s : float;
  codegen_s : float;
}

let total_s t = t.symbex_s +. t.report_s +. t.sharding_s +. t.solving_s +. t.codegen_s

type outcome = {
  plan : Plan.t;
  decision : Sharding.decision;
  report : Report.t;
  timing : timing;
}

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = Telemetry.Span.with_span name f in
  (r, Unix.gettimeofday () -. t0)

let random_rss rng nic nf =
  Array.init nf.Dsl.Ast.devices (fun _ ->
      { Plan.key = Nic.Rss.random_key rng nic; field_set = Nic.Field_set.ipv4_tcp })

let parallelize ?(request = default_request) nf =
  Telemetry.Span.with_span "pipeline" @@ fun () ->
  match Dsl.Check.check nf with
  | Error errs -> Error (String.concat "; " errs)
  | Ok _ ->
      let rng = Random.State.make [| request.seed |] in
      let model, symbex_s = timed "symbex" (fun () -> Symbex.Exec.run nf) in
      let report, report_s = timed "report" (fun () -> Report.build model) in
      let decision, sharding_s = timed "sharding" (fun () -> Sharding.decide report) in
      let warnings_of_blocked reasons =
        List.map (Format.asprintf "%a" Sharding.pp_reason) reasons
      in
      let mk strategy rss constraints warnings solving_s =
        let plan, codegen_s =
          timed "codegen" (fun () ->
              {
                Plan.nf;
                cores = request.cores;
                nic = request.nic;
                strategy;
                rss;
                constraints;
                warnings;
              })
        in
        Ok
          {
            plan;
            decision;
            report;
            timing = { symbex_s; report_s; sharding_s; solving_s; codegen_s };
          }
      in
      let lock_fallback warnings solving_s =
        mk Plan.Lock_based (random_rss rng request.nic nf) [] warnings solving_s
      in
      (match (request.strategy, decision) with
      | `Force_locks, _ -> lock_fallback [ "lock-based parallelization forced" ] 0.
      | `Force_tm, _ ->
          mk Plan.Tm_based (random_rss rng request.nic nf) []
            [ "transactional-memory parallelization forced" ]
            0.
      | `Auto, Sharding.No_state ->
          mk Plan.Load_balance (random_rss rng request.nic nf) [] [] 0.
      | `Auto, Sharding.Read_only ->
          mk Plan.Load_balance (random_rss rng request.nic nf) []
            [ "state is read-only and will be replicated per core" ]
            0.
      | `Auto, Sharding.Blocked reasons -> lock_fallback (warnings_of_blocked reasons) 0.
      | `Auto, Sharding.Shard constraints -> (
          let solved, solving_s =
            timed "solving" (fun () ->
                match
                  Rs3.Problem.for_constraints ~nic:request.nic ~nports:nf.Dsl.Ast.devices
                    constraints
                with
                | Error e -> Error e
                | Ok problem -> (
                    match
                      Rs3.Solve.solve ~backend:request.solver ~seed:request.seed problem
                    with
                    | Error e -> Error e
                    | Ok sol -> Ok (problem, sol)))
          in
          match solved with
          | Error e ->
              lock_fallback
                [ Printf.sprintf "sharding solution found but unrealizable on the NIC: %s" e ]
                solving_s
          | Ok (problem, sol) ->
              let rss =
                Array.mapi
                  (fun port key ->
                    { Plan.key; field_set = problem.Rs3.Problem.field_sets.(port) })
                  sol.Rs3.Solve.keys
              in
              mk Plan.Shared_nothing rss constraints [] solving_s))

let parallelize_exn ?request nf =
  match parallelize ?request nf with Ok o -> o | Error e -> invalid_arg e
