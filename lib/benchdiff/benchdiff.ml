(* Regression gating over BENCH_<name>.json telemetry documents.  See the
   interface for the contract; the JSON parser below covers exactly the
   subset Telemetry.to_json emits (plus the usual atoms, so hand-written
   baselines parse too). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Syntax of int * string

  let parse_exn s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Syntax (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some x when x = c -> advance ()
      | Some x -> fail (Printf.sprintf "expected %c, found %c" c x)
      | None -> fail (Printf.sprintf "expected %c, found end of input" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "invalid literal (expected %s)" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
            if !pos >= n then fail "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' ->
                Buffer.add_char b e;
                go ()
            | 'n' ->
                Buffer.add_char b '\n';
                go ()
            | 't' ->
                Buffer.add_char b '\t';
                go ()
            | 'r' ->
                Buffer.add_char b '\r';
                go ()
            | 'b' ->
                Buffer.add_char b '\b';
                go ()
            | 'f' ->
                Buffer.add_char b '\012';
                go ()
            | 'u' ->
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail "invalid \\u escape"
                in
                (* telemetry only escapes control chars; keep it byte-simple *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
                go ()
            | _ -> fail "unknown escape")
        | c when Char.code c < 0x20 -> fail "raw control character in string"
        | c ->
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match float_of_string_opt tok with
      | Some f -> Num f
      | None -> fail (Printf.sprintf "invalid number %S" tok)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            Arr (elems [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v

  let parse s =
    match parse_exn s with
    | v -> Ok v
    | exception Syntax (at, msg) -> Error (Printf.sprintf "json syntax error at byte %d: %s" at msg)

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
  let to_string_opt = function Str s -> Some s | _ -> None
  let to_float_opt = function Num f -> Some f | _ -> None
end

type doc = { schema : string; doc_name : string; counters : (string * int) list }

let schema_prefix = "maestro-telemetry/"

let doc_of_string text =
  match Json.parse text with
  | Error _ as e -> e
  | Ok j -> (
      let schema = Option.bind (Json.member "schema" j) Json.to_string_opt in
      match schema with
      | None -> Error "not a telemetry document: no \"schema\" field"
      | Some schema when not (String.starts_with ~prefix:schema_prefix schema) ->
          Error (Printf.sprintf "unsupported schema %S (want %s*)" schema schema_prefix)
      | Some schema -> (
          let doc_name =
            Option.value ~default:"?" (Option.bind (Json.member "name" j) Json.to_string_opt)
          in
          (* strict counter validation: a malformed entry silently dropped
             here would silently pass the CI gate forever after, so every
             entry must carry a string name and a finite numeric value *)
          let counters =
            match Json.member "counters" j with
            | None -> Error "invalid telemetry document: no \"counters\" array"
            | Some (Json.Arr items) ->
                let rec go acc i = function
                  | [] -> Ok (List.rev acc)
                  | item :: rest -> (
                      let name = Option.bind (Json.member "name" item) Json.to_string_opt in
                      let value = Option.bind (Json.member "value" item) Json.to_float_opt in
                      match (name, value) with
                      | None, _ ->
                          Error (Printf.sprintf "counter #%d: missing or non-string \"name\"" i)
                      | Some name, None ->
                          Error
                            (Printf.sprintf "counter %S: missing or non-numeric \"value\"" name)
                      | Some name, Some v when Float.is_nan v ->
                          Error (Printf.sprintf "counter %S: value is NaN" name)
                      | Some name, Some v when not (Float.is_finite v) ->
                          Error (Printf.sprintf "counter %S: value is infinite" name)
                      | Some name, Some v -> go ((name, int_of_float v) :: acc) (i + 1) rest)
                in
                go [] 0 items
            | Some _ -> Error "invalid telemetry document: \"counters\" is not an array"
          in
          match counters with
          | Error e -> Error e
          | Ok counters -> Ok { schema; doc_name; counters = List.sort compare counters }))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match doc_of_string text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok _ as ok -> ok)

let counter doc name = List.assoc_opt name doc.counters

let contains_sub name sub =
  let sn = String.length sub and nn = String.length name in
  let rec scan i = i + sn <= nn && (String.sub name i sn = sub || scan (i + 1)) in
  scan 0

let is_timing_counter name =
  let has_part part = String.ends_with ~suffix:part name || contains_sub name (part ^ "_") in
  has_part "_ns" || has_part "_ms" || contains_sub name "speedup"

(* counter-name globs: '*' matches any (possibly empty) substring *)
let glob_matches pat name =
  let np = String.length pat and nn = String.length name in
  let rec go i j =
    if i = np then j = nn
    else if pat.[i] = '*' then
      let rec try_split k = k <= nn && (go (i + 1) k || try_split (k + 1)) in
      try_split j
    else j < nn && pat.[i] = name.[j] && go (i + 1) (j + 1)
  in
  go 0 0

let expand_patterns patterns names =
  List.concat_map
    (fun pat ->
      if String.contains pat '*' then
        (* a pattern matching nothing stays in the list verbatim, so it
           surfaces as [missing] instead of silently gating nothing *)
        match List.filter (glob_matches pat) names with [] -> [ pat ] | hits -> hits
      else [ pat ])
    patterns

type change = { counter_name : string; base : int; current : int; ratio : float }

type report = {
  threshold : float;
  regressions : change list;
  improvements : change list;
  shrunk : change list;
  unchanged : int;
  missing : string list;
  added : string list;
}

let diff ?(threshold = 0.15) ?only ?(include_timings = false) ?(min_counters = []) base_doc
    cur_doc =
  let known =
    List.sort_uniq compare (List.map fst base_doc.counters @ List.map fst cur_doc.counters)
  in
  let only = Option.map (fun pats -> expand_patterns pats known) only in
  let min_counters = expand_patterns min_counters known in
  let wanted name =
    (include_timings || not (is_timing_counter name))
    && (List.mem name min_counters
       || match only with None -> true | Some names -> List.mem name names)
  in
  let regressions = ref [] and improvements = ref [] and shrunk = ref [] in
  let unchanged = ref 0 in
  let missing = ref [] and added = ref [] in
  List.iter
    (fun (name, base) ->
      if wanted name then
        match counter cur_doc name with
        | None -> missing := name :: !missing
        | Some current ->
            let ratio =
              if base = 0 then if current = 0 then 1.0 else infinity
              else float_of_int current /. float_of_int base
            in
            let ch = { counter_name = name; base; current; ratio } in
            if ratio > 1.0 +. threshold then regressions := ch :: !regressions
            else if ratio < 1.0 -. threshold then
              if List.mem name min_counters then shrunk := ch :: !shrunk
              else improvements := ch :: !improvements
            else incr unchanged)
    base_doc.counters;
  List.iter
    (fun (name, _) ->
      if wanted name && counter base_doc name = None then added := name :: !added)
    cur_doc.counters;
  (* [only] / [min_counters] names absent from the baseline are
     misconfigurations, not noise *)
  List.iter
    (fun name -> if counter base_doc name = None then missing := name :: !missing)
    (Option.value ~default:[] only @ min_counters);
  {
    threshold;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    shrunk = List.rev !shrunk;
    unchanged = !unchanged;
    missing = List.sort_uniq compare !missing;
    added = List.rev !added;
  }

let ok r = r.regressions = [] && r.shrunk = [] && r.missing = []

let pp_change fmt c =
  Format.fprintf fmt "%-44s %12d -> %12d  (%+.1f%%)" c.counter_name c.base c.current
    (100.0 *. (c.ratio -. 1.0))

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  if r.regressions <> [] then begin
    Format.fprintf fmt "REGRESSIONS (> +%.0f%%):@," (100.0 *. r.threshold);
    List.iter (fun c -> Format.fprintf fmt "  %a@," pp_change c) r.regressions
  end;
  if r.shrunk <> [] then begin
    Format.fprintf fmt "SHRUNK below floor (> -%.0f%%):@," (100.0 *. r.threshold);
    List.iter (fun c -> Format.fprintf fmt "  %a@," pp_change c) r.shrunk
  end;
  if r.improvements <> [] then begin
    Format.fprintf fmt "improvements (> -%.0f%%):@," (100.0 *. r.threshold);
    List.iter (fun c -> Format.fprintf fmt "  %a@," pp_change c) r.improvements
  end;
  List.iter (fun n -> Format.fprintf fmt "  missing in current run: %s@," n) r.missing;
  List.iter (fun n -> Format.fprintf fmt "  new counter (no baseline): %s@," n) r.added;
  Format.fprintf fmt "%d compared within threshold, %d regressed, %d shrunk, %d improved@]"
    r.unchanged
    (List.length r.regressions)
    (List.length r.shrunk)
    (List.length r.improvements)
