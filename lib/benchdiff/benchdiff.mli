(** Regression gating over [BENCH_<name>.json] telemetry documents.

    The benchmark harness ([bench/main.exe bench-json fastpath]) writes
    versioned {!Telemetry.to_json} snapshots; this library reads two of
    them back — a committed baseline and a fresh run — and reports which
    counters regressed beyond a threshold.  Counters are oriented
    "higher is worse": both the deterministic work counters (symbex
    paths, GF(2) equations, Toeplitz hashes, …) and the [_ns]-suffixed
    timing counters of the fastpath benchmark regress by {e growing}.

    Timing counters are machine-dependent, so {!diff} skips them by
    default ({!is_timing_counter}) — CI gates on the deterministic work
    counters and a human compares timings locally.

    No JSON library ships with the toolchain, so a minimal parser for
    the telemetry subset (objects, arrays, strings with escapes,
    numbers, booleans, null) lives here. *)

(** A minimal JSON tree, sufficient for telemetry documents. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** [Error msg] carries the byte offset of the first syntax error. *)

  val member : string -> t -> t option
  (** Field lookup on an [Obj]; [None] on anything else. *)

  val to_string_opt : t -> string option
  val to_float_opt : t -> float option
end

(** One parsed benchmark document: its identity and its counters. *)
type doc = {
  schema : string;
  doc_name : string;
  counters : (string * int) list;  (** sorted by name *)
}

val doc_of_string : string -> (doc, string) result
(** Rejects documents whose ["schema"] is not
    {!Telemetry.schema_version}-compatible (prefix ["maestro-telemetry/"]),
    that carry no ["counters"] array, or whose counter entries are
    malformed — missing/non-string name, missing/non-numeric value, NaN
    or infinite value.  Each rejection names the offending counter: a
    malformed entry silently dropped would silently pass every CI gate
    that references it. *)

val load : string -> (doc, string) result
(** Read and parse a file. *)

val counter : doc -> string -> int option

val glob_matches : string -> string -> bool
(** [glob_matches pattern name]: ['*'] in [pattern] matches any (possibly
    empty) substring; every other character matches itself. *)

val expand_patterns : string list -> string list -> string list
(** Expand counter-name patterns against a list of known counter names.
    Names without ['*'] pass through; a pattern matching nothing is kept
    verbatim (so {!diff} reports it [missing] rather than silently gating
    nothing). *)

val is_timing_counter : string -> bool
(** [true] for machine-dependent counters: wall-clock values — names
    ending in [_ns] or [_ms] or containing [_ns_]/[_ms_] — and speedup
    ratios (names containing [speedup], which are both machine-dependent
    and higher-is-{e better}, the opposite of the gate's orientation). *)

type change = {
  counter_name : string;
  base : int;
  current : int;
  ratio : float;  (** current /. base; [infinity] when base = 0 *)
}

type report = {
  threshold : float;
  regressions : change list;  (** grew beyond the threshold *)
  improvements : change list;  (** shrank beyond the threshold *)
  shrunk : change list;
      (** floor-gated counters ([min_counters]) that shrank beyond the
          threshold — a {e failure}, unlike {!field-improvements}: these
          counters measure work that must keep happening (rebalances
          applied, flow states migrated), so a collapse towards zero
          means the machinery silently stopped running *)
  unchanged : int;  (** compared counters within the threshold *)
  missing : string list;  (** in baseline but not in current *)
  added : string list;  (** in current but not in baseline *)
}

val diff :
  ?threshold:float ->
  ?only:string list ->
  ?include_timings:bool ->
  ?min_counters:string list ->
  doc ->
  doc ->
  report
(** [diff baseline current] compares every counter present in both
    documents.  [threshold] defaults to [0.15] (a counter regresses when
    [current > base *. (1. +. threshold)]).  [only] restricts the
    comparison to the named counters ([missing] then lists requested
    names absent from either side); names in [only] and [min_counters]
    may be ['*'] globs, expanded against the union of both documents'
    counter names ({!expand_patterns}).  [include_timings] (default
    [false]) also compares {!is_timing_counter} counters.
    [min_counters] names counters with a {e floor}: they are always
    compared (even under [only]), shrinking below
    [base *. (1. -. threshold)] lands them in {!report.shrunk} instead
    of [improvements], and a name absent from either document is
    reported [missing]. *)

val ok : report -> bool
(** [true] when the report carries no regressions, no shrunk
    floor-gated counters and no missing counters. *)

val pp_report : Format.formatter -> report -> unit
