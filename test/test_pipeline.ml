(* End-to-end pipeline tests: Maestro's decisions match the paper for every
   evaluated NF, generated RSS keys realize the sharding, and the emitted C
   carries the right structure. *)

let outcome_of name =
  Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn name)

let strategy_of name = (outcome_of name).Maestro.Pipeline.plan.Maestro.Plan.strategy

(* The registry records the paper's table (shared-nothing / locks /
   read-only); with the SCR rung between sharding and the lock, every NF
   the paper sent to locks now takes SCR instead whenever its update
   digest fits the replication budget. *)
let test_decisions_match_paper () =
  List.iter
    (fun name ->
      let expected =
        match Nfs.Registry.expected_strategy name with
        | `Shared_nothing -> Maestro.Plan.Shared_nothing
        | `Locks -> (
            match Maestro.Scrspec.admissible (Nfs.Registry.find_exn name) with
            | Ok _ -> Maestro.Plan.Scr
            | Error _ -> Maestro.Plan.Lock_based)
        | `Read_only_lb -> Maestro.Plan.Load_balance
      in
      let actual = strategy_of name in
      Alcotest.(check string)
        (Printf.sprintf "strategy for %s" name)
        (Maestro.Plan.strategy_name expected)
        (Maestro.Plan.strategy_name actual))
    Nfs.Registry.names

let test_blocked_nfs_carry_warnings () =
  List.iter
    (fun name ->
      let o = outcome_of name in
      Alcotest.(check bool)
        (Printf.sprintf "%s explains itself" name)
        true
        (o.Maestro.Pipeline.plan.Maestro.Plan.warnings <> []))
    [ "dbridge"; "lb" ]

let test_forced_strategies () =
  let request = { Maestro.Pipeline.default_request with strategy = `Force_locks } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check string) "forced locks" "lock-based"
    (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy);
  let request = { Maestro.Pipeline.default_request with strategy = `Force_tm } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check string) "forced tm" "transactional-memory"
    (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy);
  let request = { Maestro.Pipeline.default_request with strategy = `Force_scr } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check string) "forced scr" "state-compute-replication"
    (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy);
  Alcotest.(check string) "forced scr rung" "state-compute-replication"
    (Maestro.Ladder.rung_name o.Maestro.Pipeline.ladder.Maestro.Ladder.chosen);
  (* a read-only NF has nothing to replicate updates for: forcing SCR
     walks past the rejected rung down to the lock *)
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "sbridge") in
  Alcotest.(check string) "scr inadmissible falls to lock" "lock-based"
    (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy)

let test_fw_keys_realize_symmetry () =
  let o = outcome_of "fw" in
  let plan = o.Maestro.Pipeline.plan in
  let rss0 = Maestro.Plan.rss_engine plan 0 and rss1 = Maestro.Plan.rss_engine plan 1 in
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 200 do
    let p =
      Packet.Pkt.make ~port:0
        ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:(Random.State.int rng 0x3fffffff)
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    let reply = Packet.Pkt.with_port (Packet.Pkt.flip p) 1 in
    Alcotest.(check int) "reply on same core" (Nic.Rss.dispatch rss0 p)
      (Nic.Rss.dispatch rss1 reply)
  done

let test_nat_keys_realize_server_sharding () =
  let o = outcome_of "nat" in
  let plan = o.Maestro.Pipeline.plan in
  let rss0 = Maestro.Plan.rss_engine plan 0 and rss1 = Maestro.Plan.rss_engine plan 1 in
  let rng = Random.State.make [| 4 |] in
  for _ = 1 to 200 do
    let server = Random.State.int rng 0x3fffffff and sport = Random.State.int rng 0x10000 in
    let lan =
      Packet.Pkt.make ~port:0
        ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:server
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:sport ()
    in
    let wan =
      Packet.Pkt.make ~port:1 ~ip_src:server
        ~ip_dst:(Random.State.int rng 0x3fffffff)
        ~src_port:sport
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    Alcotest.(check int) "server meets its flows" (Nic.Rss.dispatch rss0 lan)
      (Nic.Rss.dispatch rss1 wan)
  done

let test_policer_keys_shard_by_user () =
  let o = outcome_of "policer" in
  let plan = o.Maestro.Pipeline.plan in
  let rss1 = Maestro.Plan.rss_engine plan 1 in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let user = Random.State.int rng 0x3fffffff in
    let a =
      Packet.Pkt.make ~port:1
        ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:user
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    let b =
      Packet.Pkt.make ~port:1
        ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:user
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    Alcotest.(check int) "same user same core" (Nic.Rss.dispatch rss1 a) (Nic.Rss.dispatch rss1 b)
  done

let test_timing_is_recorded () =
  let o = outcome_of "fw" in
  Alcotest.(check bool) "total time positive" true
    (Maestro.Pipeline.total_s o.Maestro.Pipeline.timing > 0.0)

let test_emitted_c_structure () =
  let o = outcome_of "fw" in
  let code = Maestro.Codegen.emit_c o.Maestro.Pipeline.plan in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (Astring_contains.contains code needle))
    [
      "RSS_HASH_PORT_0";
      "RSS_HASH_PORT_1";
      "rss_configure";
      "core_id";
      "map_get";
      "expire_items_single_map";
      "forward";
    ]

let test_emitted_c_locks_comment () =
  let request = { Maestro.Pipeline.default_request with strategy = `Force_locks } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  let code = Maestro.Codegen.emit_c o.Maestro.Pipeline.plan in
  Alcotest.(check bool) "speculative comment" true
    (Astring_contains.contains code "Speculative read path")

let test_scenarios_decisions () =
  let decisions =
    List.map
      (fun nf ->
        let o = Maestro.Pipeline.parallelize_exn nf in
        (nf.Dsl.Ast.name, o.Maestro.Pipeline.plan.Maestro.Plan.strategy))
      (Nfs.Scenarios.all ())
  in
  let expect name strategy =
    match List.assoc_opt name decisions with
    | Some s ->
        Alcotest.(check string) name
          (Maestro.Plan.strategy_name strategy)
          (Maestro.Plan.strategy_name s)
    | None -> Alcotest.fail ("missing scenario " ^ name)
  in
  (* unshardable write-heavy scenarios land on the SCR rung now (their
     digests are small); the lock is the fallback, not the default *)
  expect "fig2_key_equality" Maestro.Plan.Shared_nothing;
  expect "fig2_subsumption" Maestro.Plan.Shared_nothing;
  expect "fig2_disjoint" Maestro.Plan.Scr;
  expect "fig2_constant_key" Maestro.Plan.Scr;
  expect "fig2_interchangeable" Maestro.Plan.Shared_nothing

let test_psd_shards_on_source_only () =
  let o = outcome_of "psd" in
  let plan = o.Maestro.Pipeline.plan in
  (* rule R2: the source-IP requirement subsumes (source, port) *)
  let fields = Nic.Field_set.fields plan.Maestro.Plan.rss.(0).Maestro.Plan.field_set in
  Alcotest.(check bool) "src only" true (fields = [ Packet.Field.Ip_src ])

(* Extension: the prefix-sharded hierarchical heavy hitter (§3.5's hard
   case).  The /8 requirement must subsume the deeper levels (R2 over
   prefixes) and the generated key must collide exactly on the top 8 bits
   of the source address. *)
let test_hhh_prefix_sharding () =
  let o = outcome_of "hhh" in
  let plan = o.Maestro.Pipeline.plan in
  Alcotest.(check string) "shared-nothing" "shared-nothing"
    (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy);
  let rss = Maestro.Plan.rss_engine plan 0 in
  let rng = Random.State.make [| 6 |] in
  for _ = 1 to 200 do
    let subnet = Random.State.int rng 256 in
    let mk () =
      Packet.Pkt.make ~port:0
        ~ip_src:((subnet lsl 24) lor Random.State.int rng 0xffffff)
        ~ip_dst:(Random.State.int rng 0x3fffffff)
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    Alcotest.(check int) "same /8 meets" (Nic.Rss.dispatch rss (mk ()))
      (Nic.Rss.dispatch rss (mk ()))
  done;
  (* distinct /8s must spread over the cores *)
  let seen = Hashtbl.create 16 in
  for subnet = 0 to 255 do
    let p =
      Packet.Pkt.make ~port:0 ~ip_src:(subnet lsl 24) ~ip_dst:1 ~src_port:2 ~dst_port:3 ()
    in
    Hashtbl.replace seen (Nic.Rss.dispatch rss p) ()
  done;
  Alcotest.(check bool) "spreads over >8 cores" true (Hashtbl.length seen > 8)

let test_hhh_equivalence () =
  let nf = Nfs.Registry.find_exn "hhh" in
  let w = Sim.Workload.read_heavy ~pkts:3000 ~flows:500 "hhh" in
  let seq = Runtime.Parallel.run_sequential nf w.Sim.Workload.trace in
  let plan = (outcome_of "hhh").Maestro.Pipeline.plan in
  let par = Runtime.Parallel.run plan w.Sim.Workload.trace in
  (* per-core sketches count a subset of the sequential totals, so observable
     equivalence here is: nothing admitted in parallel was dropped
     sequentially for a *non-capacity* reason and vice versa; with budgets
     unreached, verdicts match exactly *)
  Alcotest.(check bool) "verdicts equal under budget" true
    (Array.for_all2 (fun a b -> a = b) seq par.Runtime.Parallel.verdicts)

let test_sat_solver_request () =
  let request = { Maestro.Pipeline.default_request with solver = `Sat } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check string) "still shared-nothing" "shared-nothing"
    (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy)

let suite =
  [
    Alcotest.test_case "decisions match the paper (Table of §6.1)" `Quick
      test_decisions_match_paper;
    Alcotest.test_case "blocked NFs carry warnings" `Quick test_blocked_nfs_carry_warnings;
    Alcotest.test_case "forced strategies" `Quick test_forced_strategies;
    Alcotest.test_case "fw keys realize symmetry (Fig. 3)" `Quick test_fw_keys_realize_symmetry;
    Alcotest.test_case "nat keys realize server sharding (R5)" `Quick
      test_nat_keys_realize_server_sharding;
    Alcotest.test_case "policer keys shard by user" `Quick test_policer_keys_shard_by_user;
    Alcotest.test_case "timing recorded" `Quick test_timing_is_recorded;
    Alcotest.test_case "emitted C structure (Fig. 13)" `Quick test_emitted_c_structure;
    Alcotest.test_case "emitted C lock discipline" `Quick test_emitted_c_locks_comment;
    Alcotest.test_case "Fig. 2 scenario decisions" `Quick test_scenarios_decisions;
    Alcotest.test_case "psd shards on source only (R2)" `Quick test_psd_shards_on_source_only;
    Alcotest.test_case "sat solver request" `Quick test_sat_solver_request;
    Alcotest.test_case "hhh prefix sharding (extension)" `Quick test_hhh_prefix_sharding;
    Alcotest.test_case "hhh equivalence (extension)" `Quick test_hhh_equivalence;
  ]
