(* Tests for the derived zero-copy codecs: per-shape round-trip properties
   over both shipped stacks (tunnels, VLAN/QinQ, IPv6), staged-vs-legacy
   differential, typed parse errors, pcap fixtures for the new protocols,
   and the vxlan_fw end-to-end differential (inner-header RSS sharding
   agrees with the sequential oracle). *)

open Packet

(* Classification is first-match with no backtracking, so free switch
   scrutinees (fields the encoder does not force, i.e. those on a taken
   default arm) must not collide with a sibling arm's tag or the encoded
   frame classifies into a different — usually longer, hence truncated —
   shape.  Forced scrutinees are fixed up by the encoder regardless of
   the value supplied here, so the sanitizer is harmless on them. *)
let sanitize path v =
  let leaf = match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  match leaf with
  | "proto" | "nexthdr" ->
      let v = v land 0xff in
      if v = 6 || v = 17 || v = Stacks.gre_proto then 50 else v
  | "dport" -> if v land 0xffff = Stacks.vxlan_port then 80 else v
  | _ -> v

(* encode ∘ decode = id, per shape: a frame built by the derived encoder
   classifies into its own shape, decodes to field values, and re-encoding
   those values reproduces the frame byte for byte (checksums included —
   they are fixups on both sides). *)
let roundtrip_prop label codec =
  let nshapes = Codec.shape_count codec in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: encode/decode roundtrip over all %d shapes" label nshapes)
    ~count:400
    QCheck.(pair (int_bound (nshapes - 1)) (int_bound 0x3ffffff))
    (fun (shape, seed) ->
      let rng = Random.State.make [| seed |] in
      let vals =
        List.map
          (fun p -> (p, sanitize p (Random.State.int rng 0x3fffffff)))
          (Codec.shape_fields codec shape)
      in
      let payload_len = Random.State.int rng 32 in
      let f1 = Codec.encode codec ~shape ~payload_len vals in
      Codec.shape_of codec f1 = shape
      &&
      match Codec.decode codec f1 with
      | Error _ -> false
      | Ok (shape', fields, payload') ->
          shape' = shape && payload' = payload_len
          && Bytes.equal f1 (Codec.encode codec ~shape ~payload_len:payload' fields))

let prop_pkt_roundtrip = roundtrip_prop "pkt" Stacks.pkt
let prop_full_roundtrip = roundtrip_prop "full" Stacks.full

(* --- staged vs legacy differential -------------------------------------- *)

let gen_plain_pkt =
  QCheck.Gen.(
    let ip = int_bound 0x3fffffff in
    let port = int_bound 0xffff in
    map3
      (fun (s, d) (sp, dp) (udp, sz) ->
        Pkt.make
          ~proto:(if udp then Pkt.Udp else Pkt.Tcp)
          ~ip_src:s ~ip_dst:d ~src_port:sp
          ~dst_port:(if dp = Stacks.vxlan_port then 80 else dp)
          ~size:(64 + sz) ())
      (pair ip ip) (pair port port) (pair bool (int_bound 256)))

let arb_plain = QCheck.make ~print:(Format.asprintf "%a" Pkt.pp) gen_plain_pkt

let prop_serialize_differential =
  QCheck.Test.make ~name:"staged serialize = legacy serialize (bytes)" ~count:300 arb_plain
    (fun p -> Bytes.equal (Wire.serialize p) (Wire.Legacy.serialize p))

let prop_parse_differential =
  QCheck.Test.make ~name:"staged parse = legacy parse" ~count:300 arb_plain (fun p ->
      let frame = Wire.Legacy.serialize p in
      match (Wire.parse frame, Wire.Legacy.parse frame) with
      | Ok a, Ok b -> Pkt.equal a b
      | Error _, Error _ -> true
      | _ -> false)

(* --- tunnel round-trips -------------------------------------------------- *)

let gen_encap_pkt =
  QCheck.Gen.(
    let ip = int_bound 0x3fffffff in
    let port = int_bound 0xffff in
    map3
      (fun (s, d) ((isrc, idst), (isp, idp)) (gre, (vni, inner_udp)) ->
        let kind = if gre then Pkt.Gre else Pkt.Vxlan in
        let encap =
          {
            Pkt.kind;
            tunnel_id = vni;
            in_eth_src = (if gre then 0 else 0x02aabbcc0001);
            in_eth_dst = (if gre then 0 else 0x02aabbcc0002);
            in_ip_src = isrc;
            in_ip_dst = idst;
            in_proto = (if inner_udp then Pkt.Udp else Pkt.Tcp);
            in_src_port = isp;
            in_dst_port = idp;
          }
        in
        let p =
          Pkt.make
            ~proto:(if gre then Pkt.Other Stacks.gre_proto else Pkt.Udp)
            ~ip_src:s ~ip_dst:d
            ~src_port:(if gre then 0 else 49152)
            ~dst_port:(if gre then 0 else Stacks.vxlan_port)
            ~encap ~size:160 ()
        in
        p)
      (pair ip ip)
      (pair (pair ip ip) (pair port port))
      (pair bool (pair (int_bound 0xffffff) bool)))

let arb_encap = QCheck.make ~print:(Format.asprintf "%a" Pkt.pp) gen_encap_pkt

let prop_tunnel_roundtrip =
  QCheck.Test.make ~name:"vxlan/gre serialize/parse roundtrip" ~count:300 arb_encap (fun p ->
      match Wire.parse_typed (Wire.serialize p) with
      | Ok q -> Pkt.equal p q
      | Error _ -> false)

(* --- typed errors -------------------------------------------------------- *)

let test_typed_errors () =
  (match Wire.parse_typed (Bytes.create 10) with
  | Error (Codec.Truncated { record = "eth"; need = 14; have = 10 }) -> ()
  | _ -> Alcotest.fail "expected eth truncation");
  let arp = Wire.serialize (Pkt.make ~ip_src:1 ~ip_dst:2 ~src_port:1 ~dst_port:2 ()) in
  Bytes.set arp 12 '\x08';
  Bytes.set arp 13 '\x06';
  (match Wire.parse_typed arp with
  | Error (Codec.Unsupported { record = "eth"; tag_field = "type"; tag = 0x0806 }) -> ()
  | _ -> Alcotest.fail "expected unsupported ethertype");
  (* a VXLAN frame cut inside the inner headers is a truncation of the
     inner record, not a silent short parse *)
  let vx =
    Pkt.make ~proto:Pkt.Udp ~ip_src:1 ~ip_dst:2 ~src_port:49152 ~dst_port:Stacks.vxlan_port
      ~encap:Pkt.default_encap ~size:110 ()
  in
  let frame = Wire.serialize vx in
  match Wire.parse_typed (Bytes.sub frame 0 60) with
  | Error (Codec.Truncated { record; _ }) ->
      Alcotest.(check string) "inner record truncated" "ieth" record
  | _ -> Alcotest.fail "expected inner truncation"

let test_shape_metadata () =
  let c = Stacks.pkt in
  Alcotest.(check int) "9 shapes" 9 (Codec.shape_count c);
  Alcotest.(check string) "tcp shape name" "eth/ipv4/tcp" (Codec.shape_name c Stacks.Sid.tcp);
  Alcotest.(check int) "named inverse" Stacks.Sid.vxlan_tcp
    (Codec.shape_named c "eth/ipv4/udp/vxlan/ieth/iipv4/itcp");
  Alcotest.(check int) "tcp min len" 54 (Codec.shape_min_len c Stacks.Sid.tcp);
  Alcotest.(check int) "vxlan tcp min len" 104 (Codec.shape_min_len c Stacks.Sid.vxlan_tcp);
  Alcotest.(check bool) "inner fields exposed" true
    (List.mem "iipv4.src" (Codec.shape_fields c Stacks.Sid.vxlan_tcp))

let test_payload_start () =
  let p = Pkt.make ~ip_src:1 ~ip_dst:2 ~src_port:3 ~dst_port:4 ~size:100 () in
  let frame = Wire.serialize p in
  let sid = Codec.shape_of Stacks.pkt frame in
  Alcotest.(check int) "tcp payload starts past 54" 54
    (Codec.payload_start Stacks.pkt sid frame)

(* --- checksum primitive -------------------------------------------------- *)

(* reference implementation with an explicit padded copy *)
let checksum_padded b =
  let len = Bytes.length b in
  let padded = Bytes.make (len + (len land 1)) '\x00' in
  Bytes.blit b 0 padded 0 len;
  let sum = ref 0 in
  for i = 0 to (Bytes.length padded / 2) - 1 do
    sum := !sum + (Char.code (Bytes.get padded (2 * i)) lsl 8)
           + Char.code (Bytes.get padded ((2 * i) + 1))
  done;
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  lnot !s land 0xffff

let prop_checksum_odd =
  QCheck.Test.make ~name:"internet_checksum matches padded reference (odd lengths)"
    ~count:200
    QCheck.(string_of_size Gen.(int_range 1 65))
    (fun s ->
      let b = Bytes.of_string s in
      Wire.internet_checksum b = checksum_padded b)

(* --- pcap fixtures ------------------------------------------------------- *)

let test_pcap_tunnels () =
  let mk kind proto =
    let gre = kind = Pkt.Gre in
    Pkt.make
      ~proto:(if gre then Pkt.Other Stacks.gre_proto else Pkt.Udp)
      ~ip_src:0x0a000001 ~ip_dst:0x0a000002
      ~src_port:(if gre then 0 else 49152)
      ~dst_port:(if gre then 0 else Stacks.vxlan_port)
      ~encap:
        {
          Pkt.kind;
          tunnel_id = 0x1234;
          in_eth_src = (if gre then 0 else Pkt.default_encap.Pkt.in_eth_src);
          in_eth_dst = (if gre then 0 else Pkt.default_encap.Pkt.in_eth_dst);
          in_ip_src = 0xc0a80101;
          in_ip_dst = 0xc0a80102;
          in_proto = proto;
          in_src_port = 1111;
          in_dst_port = 2222;
        }
      ~size:160 ()
  in
  let pkts = [ mk Pkt.Vxlan Pkt.Tcp; mk Pkt.Vxlan Pkt.Udp; mk Pkt.Gre Pkt.Tcp; mk Pkt.Gre Pkt.Udp ] in
  match Pcap.of_string (Buffer.contents (Pcap.to_buffer pkts)) with
  | Error e -> Alcotest.fail e
  | Ok read ->
      Alcotest.(check int) "all tunnel frames survive pcap" (List.length pkts) (List.length read);
      List.iter2
        (fun a b -> Alcotest.(check bool) "pcap tunnel roundtrip" true (Pkt.equal a b))
        pkts read

let test_pcap_frames () =
  (* frame-level API: raw VLAN and IPv6 frames (not representable as Pkt.t)
     survive a pcap round-trip byte for byte *)
  let vlan_frame =
    Codec.encode Stacks.full
      ~shape:(Codec.shape_named Stacks.full "eth/vlan/ipv4/tcp")
      ~payload_len:6
      [ ("vlan.vid", 42); ("ipv4.src", 0x01020304); ("tcp.sport", 80) ]
  in
  let v6_frame =
    Codec.encode Stacks.full
      ~shape:(Codec.shape_named Stacks.full "eth/ipv6/udp6")
      ~payload_len:0
      [ ("ipv6.src0", 0x20010db8); ("udp6.dport", 53) ]
  in
  let frames = [ (0, vlan_frame); (1_000_000, v6_frame) ] in
  match Pcap.frames_of_string (Buffer.contents (Pcap.to_buffer_frames frames)) with
  | Error e -> Alcotest.fail e
  | Ok read ->
      Alcotest.(check int) "frame count" 2 (List.length read);
      List.iter2
        (fun (ts_a, a) (ts_b, b) ->
          Alcotest.(check int) "timestamp" ts_a ts_b;
          Alcotest.(check bool) "bytes" true (Bytes.equal a b))
        frames read

(* --- zero-copy accessor agreement --------------------------------------- *)

let test_accessors_agree () =
  let c = Stacks.pkt in
  let g path = Codec.getter c path in
  let g_src = g "ipv4.src" and g_isrc = g "iipv4.src" and g_isp = g "itcp.sport" in
  let p =
    Pkt.make ~proto:Pkt.Udp ~ip_src:0x0a0a0a0a ~ip_dst:0x14141414 ~src_port:49152
      ~dst_port:Stacks.vxlan_port
      ~encap:
        {
          Pkt.default_encap with
          in_ip_src = 0xc0a80001;
          in_ip_dst = 0xc0a80002;
          in_src_port = 4321;
          in_dst_port = 80;
        }
      ~size:160 ()
  in
  let frame = Wire.serialize p in
  let sid = Codec.shape_of c frame in
  Alcotest.(check int) "classified as vxlan tcp" Stacks.Sid.vxlan_tcp sid;
  Alcotest.(check int) "outer src via getter" 0x0a0a0a0a (g_src.(sid) frame);
  Alcotest.(check int) "inner src via getter" 0xc0a80001 (g_isrc.(sid) frame);
  Alcotest.(check int) "inner sport via getter" 4321 (g_isp.(sid) frame)

(* --- vxlan_fw end to end ------------------------------------------------- *)

let test_vxlan_fw_pool_differential () =
  let nf = Nfs.Registry.find_exn "vxlan_fw" in
  let request = { Maestro.Pipeline.default_request with cores = 4 } in
  let outcome = Maestro.Pipeline.parallelize_exn ~request nf in
  let plan = outcome.Maestro.Pipeline.plan in
  Alcotest.(check string) "vxlan_fw shards shared-nothing" "shared-nothing"
    (Maestro.Plan.strategy_name plan.Maestro.Plan.strategy);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "RSS keys hash inner headers" true
        (List.exists Nic.Field_set.is_inner_field
           (Nic.Field_set.fields r.Maestro.Plan.field_set)))
    plan.Maestro.Plan.rss;
  let rng = Random.State.make [| 7 |] in
  let fs = Traffic.Gen.flows rng 256 in
  let spec = { Traffic.Gen.default_spec with pkts = 4000; reply_fraction = 0.4 } in
  let trace = Traffic.Gen.encapsulate Pkt.Vxlan (Traffic.Gen.uniform ~spec rng ~flows:fs) in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let par = Runtime.Parallel.run plan trace in
  Array.iteri
    (fun i v ->
      if v <> seq.(i) then
        Alcotest.failf "verdict %d differs between parallel and sequential" i)
    par.Runtime.Parallel.verdicts;
  (* the point of inner-header RSS: traffic actually spreads across cores *)
  let counts = Runtime.Parallel.dispatch_counts plan trace in
  Alcotest.(check bool) "every core receives traffic" true
    (Array.for_all (fun c -> c > 0) counts)

let test_gre_peer_decision () =
  let nf = Nfs.Registry.find_exn "gre_peer" in
  let outcome = Maestro.Pipeline.parallelize_exn nf in
  Alcotest.(check bool) "gre_peer cannot shard shared-nothing" true
    (Maestro.Plan.strategy_name outcome.Maestro.Pipeline.plan.Maestro.Plan.strategy
    <> "shared-nothing")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pkt_roundtrip;
    QCheck_alcotest.to_alcotest prop_full_roundtrip;
    QCheck_alcotest.to_alcotest prop_serialize_differential;
    QCheck_alcotest.to_alcotest prop_parse_differential;
    QCheck_alcotest.to_alcotest prop_tunnel_roundtrip;
    QCheck_alcotest.to_alcotest prop_checksum_odd;
    Alcotest.test_case "typed parse errors" `Quick test_typed_errors;
    Alcotest.test_case "shape metadata" `Quick test_shape_metadata;
    Alcotest.test_case "payload start" `Quick test_payload_start;
    Alcotest.test_case "pcap tunnel fixtures" `Quick test_pcap_tunnels;
    Alcotest.test_case "pcap raw frames (vlan, ipv6)" `Quick test_pcap_frames;
    Alcotest.test_case "zero-copy accessors" `Quick test_accessors_agree;
    Alcotest.test_case "vxlan_fw pool differential" `Quick test_vxlan_fw_pool_differential;
    Alcotest.test_case "gre_peer ladder decision" `Quick test_gre_peer_decision;
  ]
