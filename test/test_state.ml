(* Direct tests for the Vigor stateful containers (paper Table 1). *)

open State

(* --- Map_s ---------------------------------------------------------------- *)

let test_map_basics () =
  let m = Map_s.create ~capacity:4 in
  Alcotest.(check (option int)) "miss" None (Map_s.get m "a");
  Alcotest.(check bool) "put" true (Map_s.put m "a" 1);
  Alcotest.(check (option int)) "hit" (Some 1) (Map_s.get m "a");
  Alcotest.(check bool) "overwrite" true (Map_s.put m "a" 2);
  Alcotest.(check (option int)) "new value" (Some 2) (Map_s.get m "a");
  Alcotest.(check int) "size" 1 (Map_s.size m)

let test_map_capacity () =
  let m = Map_s.create ~capacity:2 in
  Alcotest.(check bool) "1" true (Map_s.put m "a" 1);
  Alcotest.(check bool) "2" true (Map_s.put m "b" 2);
  Alcotest.(check bool) "full" false (Map_s.put m "c" 3);
  (* overwriting existing keys still works at capacity *)
  Alcotest.(check bool) "overwrite ok" true (Map_s.put m "a" 9);
  Alcotest.(check bool) "erase" true (Map_s.erase m "a");
  Alcotest.(check bool) "room again" true (Map_s.put m "c" 3)

let test_map_erase_absent () =
  let m = Map_s.create ~capacity:2 in
  Alcotest.(check bool) "absent" false (Map_s.erase m "zzz")

let test_map_binary_keys () =
  let m = Map_s.create ~capacity:8 in
  let k1 = "\x00\x01\x00" and k2 = "\x00\x00\x01" in
  ignore (Map_s.put m k1 1);
  ignore (Map_s.put m k2 2);
  Alcotest.(check (option int)) "k1" (Some 1) (Map_s.get m k1);
  Alcotest.(check (option int)) "k2" (Some 2) (Map_s.get m k2)

(* --- Key / Intmap / hybrid packed path ------------------------------------- *)

let prop_key_roundtrip =
  QCheck.Test.make ~name:"packed keys roundtrip to their strings" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 Key.max_packed_bytes))
    (fun s ->
      Key.fits s
      && String.equal s (Key.unpack_string (Key.pack_string s)))

let test_key_length_tag () =
  (* same bytes, different lengths: distinct packed forms, like strings *)
  let a = Key.pack_string "\x00\x01" and b = Key.pack_string "\x00\x00\x01" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "len a" 2 (Key.byte_length a);
  Alcotest.(check int) "len b" 3 (Key.byte_length b);
  Alcotest.(check bool) "too wide rejected" true
    (try
       ignore (Key.pack_string "12345678");
       false
     with Invalid_argument _ -> true)

let test_intmap_basics () =
  let m = Intmap.create ~capacity:3 in
  Alcotest.(check int) "miss" (-1) (Intmap.find m 42 ~absent:(-1));
  Alcotest.(check bool) "put" true (Intmap.put m 42 7);
  Alcotest.(check int) "hit" 7 (Intmap.find m 42 ~absent:(-1));
  Alcotest.(check bool) "overwrite" true (Intmap.put m 42 8);
  Alcotest.(check int) "new value" 8 (Intmap.find m 42 ~absent:(-1));
  Alcotest.(check int) "size" 1 (Intmap.length m);
  Alcotest.(check bool) "erase" true (Intmap.erase m 42);
  Alcotest.(check bool) "erase absent" false (Intmap.erase m 42)

let test_intmap_capacity_and_growth () =
  let m = Intmap.create ~capacity:100 in
  (* push past the initial physical table so growth + rehash happen *)
  for i = 0 to 99 do
    Alcotest.(check bool) (Printf.sprintf "put %d" i) true (Intmap.put m (i * 17) i)
  done;
  Alcotest.(check bool) "logically full" false (Intmap.put m 9_999_999 0);
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "get %d" i) i (Intmap.find m (i * 17) ~absent:(-1))
  done

(* erase/insert churn exercises tombstone reuse without unbounded growth *)
let prop_intmap_vs_hashtbl =
  QCheck.Test.make ~name:"intmap agrees with Hashtbl under churn" ~count:50
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let m = Intmap.create ~capacity:32 in
      let h = Hashtbl.create 32 in
      let ok = ref true in
      for _ = 1 to 1000 do
        let k = Random.State.int rng 64 in
        match Random.State.int rng 3 with
        | 0 ->
            let v = Random.State.int rng 1000 in
            let fits = Hashtbl.mem h k || Hashtbl.length h < 32 in
            if Intmap.put m k v <> fits then ok := false
            else if fits then Hashtbl.replace h k v
        | 1 ->
            if Intmap.erase m k <> Hashtbl.mem h k then ok := false;
            Hashtbl.remove h k
        | _ ->
            let expect = Option.value ~default:(-1) (Hashtbl.find_opt h k) in
            if Intmap.find m k ~absent:(-1) <> expect then ok := false
      done;
      !ok && Intmap.length m = Hashtbl.length h)

let test_map_hybrid_views_agree () =
  (* entries written through the string API are visible packed and back *)
  let m = Map_s.create ~capacity:8 in
  let k = "\x01\x02\x03\x04" in
  Alcotest.(check bool) "string put" true (Map_s.put m k 5);
  Alcotest.(check int) "packed view" 5
    (Map_s.find_packed m (Key.pack_string k) ~absent:(-1));
  Alcotest.(check bool) "packed put" true (Map_s.put_packed m (Key.pack_string "\xff\xee") 9);
  Alcotest.(check (option int)) "string view" (Some 9) (Map_s.get m "\xff\xee");
  Alcotest.(check int) "size counts both" 2 (Map_s.size m);
  (* iter reconstructs packed keys as strings *)
  let seen = ref [] in
  Map_s.iter m (fun key v -> seen := (key, v) :: !seen);
  Alcotest.(check bool) "iter sees string form" true
    (List.mem (k, 5) !seen && List.mem ("\xff\xee", 9) !seen);
  Alcotest.(check bool) "packed erase" true (Map_s.erase_packed m (Key.pack_string k));
  Alcotest.(check (option int)) "gone via string" None (Map_s.get m k)

let test_map_capacity_spans_views () =
  (* the logical capacity bounds packed + wide entries together *)
  let m = Map_s.create ~capacity:2 in
  let wide = String.make 12 'x' in
  Alcotest.(check bool) "wide" true (Map_s.put m wide 1);
  Alcotest.(check bool) "packed" true (Map_s.put m "ab" 2);
  Alcotest.(check bool) "full (packed)" false (Map_s.put m "cd" 3);
  Alcotest.(check bool) "full (wide)" false (Map_s.put m (String.make 13 'y') 3);
  Alcotest.(check bool) "overwrite wide ok" true (Map_s.put m wide 4);
  Alcotest.(check bool) "overwrite packed ok" true (Map_s.put m "ab" 5)

let test_sketch_packed_consistency () =
  let s = Sketch.create ~depth:3 ~width:64 () in
  let k = "\x01\x02" in
  Sketch.increment s k;
  Sketch.add_packed s (Key.pack_string k) 2;
  (* both APIs hit the same counters, so the estimate sums *)
  Alcotest.(check bool) "mixed count >= 3" true (Sketch.count s k >= 3);
  Alcotest.(check int) "packed = string estimate" (Sketch.count s k)
    (Sketch.count_packed s (Key.pack_string k));
  Alcotest.(check bool) "over limit agrees" true
    (Sketch.over_limit s k ~limit:2
    = Sketch.over_limit_packed s (Key.pack_string k) ~limit:2)

let test_dchain_allocate_idx () =
  let c = Dchain.create ~capacity:1 in
  let i = Dchain.allocate_idx c ~now:1 in
  Alcotest.(check bool) "allocated" true (i >= 0 && Dchain.is_allocated c i);
  Alcotest.(check int) "exhausted" (-1) (Dchain.allocate_idx c ~now:2)

(* --- Vector --------------------------------------------------------------- *)

let test_vector () =
  let v = Vector.create ~capacity:4 ~default:0 in
  Vector.set v 2 42;
  Alcotest.(check int) "set/get" 42 (Vector.get v 2);
  Vector.update v 2 (fun x -> x + 1);
  Alcotest.(check int) "update" 43 (Vector.get v 2);
  Vector.reset v;
  Alcotest.(check int) "reset" 0 (Vector.get v 2);
  Alcotest.(check bool) "bounds" true
    (try
       ignore (Vector.get v 4);
       false
     with Invalid_argument _ -> true)

(* --- Dchain --------------------------------------------------------------- *)

let test_dchain_allocate_all () =
  let c = Dchain.create ~capacity:3 in
  let a = Dchain.allocate c ~now:1 and b = Dchain.allocate c ~now:2 in
  let d = Dchain.allocate c ~now:3 in
  Alcotest.(check bool) "three distinct" true
    (match (a, b, d) with
    | Some x, Some y, Some z -> x <> y && y <> z && x <> z
    | _ -> false);
  Alcotest.(check (option int)) "exhausted" None (Dchain.allocate c ~now:4);
  Alcotest.(check int) "allocated" 3 (Dchain.allocated c)

let test_dchain_expiry_order () =
  let c = Dchain.create ~capacity:4 in
  let i1 = Option.get (Dchain.allocate c ~now:10) in
  let i2 = Option.get (Dchain.allocate c ~now:20) in
  let i3 = Option.get (Dchain.allocate c ~now:30) in
  Alcotest.(check (option int)) "oldest" (Some i1) (Dchain.oldest c);
  (* rejuvenating the oldest moves it behind *)
  Alcotest.(check bool) "rejuvenate" true (Dchain.rejuvenate c i1 ~now:40);
  Alcotest.(check (option int)) "new oldest" (Some i2) (Dchain.oldest c);
  (* expiry frees strictly-older entries, oldest first *)
  Alcotest.(check (list int)) "expired" [ i2; i3 ] (Dchain.expire_before c ~threshold:35);
  Alcotest.(check int) "one left" 1 (Dchain.allocated c);
  Alcotest.(check bool) "i1 still allocated" true (Dchain.is_allocated c i1)

let test_dchain_free_and_reuse () =
  let c = Dchain.create ~capacity:2 in
  let i = Option.get (Dchain.allocate c ~now:1) in
  Alcotest.(check bool) "free" true (Dchain.free c i);
  Alcotest.(check bool) "double free" false (Dchain.free c i);
  Alcotest.(check bool) "reusable" true (Dchain.allocate c ~now:2 <> None)

let test_dchain_last_touch () =
  let c = Dchain.create ~capacity:2 in
  let i = Option.get (Dchain.allocate c ~now:5) in
  Alcotest.(check (option int)) "touch" (Some 5) (Dchain.last_touch c i);
  ignore (Dchain.rejuvenate c i ~now:9);
  Alcotest.(check (option int)) "rejuvenated" (Some 9) (Dchain.last_touch c i);
  Alcotest.(check (option int)) "absent" None (Dchain.last_touch c 1)

(* --- Sketch --------------------------------------------------------------- *)

let test_sketch_counts () =
  let s = Sketch.create ~depth:3 ~width:64 () in
  Alcotest.(check int) "empty" 0 (Sketch.count s "k");
  Sketch.increment s "k";
  Sketch.increment s "k";
  Alcotest.(check bool) "at least 2" true (Sketch.count s "k" >= 2);
  Sketch.clear s;
  Alcotest.(check int) "cleared" 0 (Sketch.count s "k")

let test_sketch_over_limit () =
  let s = Sketch.create () in
  Sketch.add s "pair" 65;
  Alcotest.(check bool) "over" true (Sketch.over_limit s "pair" ~limit:64);
  Alcotest.(check bool) "not over" false (Sketch.over_limit s "pair" ~limit:65)

(* count-min never under-estimates *)
let prop_sketch_overestimates =
  QCheck.Test.make ~name:"count-min never under-estimates" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 1 500))
    (fun (keys, adds) ->
      let rng = Random.State.make [| keys; adds |] in
      let s = Sketch.create ~depth:4 ~width:128 () in
      let truth = Hashtbl.create 64 in
      for _ = 1 to adds do
        let k = string_of_int (Random.State.int rng keys) in
        Sketch.increment s k;
        Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k))
      done;
      Hashtbl.fold (fun k v acc -> acc && Sketch.count s k >= v) truth true)

(* --- Expire helpers -------------------------------------------------------- *)

let test_expire_single_map () =
  let chain = Dchain.create ~capacity:8 in
  let keys = Vector.create ~capacity:8 ~default:"" in
  let map = Map_s.create ~capacity:8 in
  let add key now =
    Option.get (Expire.allocate_flow chain ~keys ~map ~key ~now)
  in
  let _a = add "flow-a" 10 and _b = add "flow-b" 20 in
  Alcotest.(check int) "both live" 2 (Map_s.size map);
  let expired = Expire.expire_single_map chain ~keys ~map ~threshold:15 in
  Alcotest.(check int) "one expired" 1 expired;
  Alcotest.(check bool) "a gone" false (Map_s.mem map "flow-a");
  Alcotest.(check bool) "b alive" true (Map_s.mem map "flow-b")

let test_allocate_flow_full_map () =
  let chain = Dchain.create ~capacity:4 in
  let keys = Vector.create ~capacity:4 ~default:"" in
  let map = Map_s.create ~capacity:1 in
  Alcotest.(check bool) "first fits" true
    (Expire.allocate_flow chain ~keys ~map ~key:"x" ~now:1 <> None);
  (* the map (not the chain) is the binding constraint: allocation must be
     rolled back *)
  Alcotest.(check bool) "second refused" true
    (Expire.allocate_flow chain ~keys ~map ~key:"y" ~now:2 = None);
  Alcotest.(check int) "chain rolled back" 1 (Dchain.allocated chain)

(* dchain invariant: allocated + free = capacity under random ops *)
let prop_dchain_conservation =
  QCheck.Test.make ~name:"dchain conserves its index pool" ~count:50
    QCheck.(int_range 1 2000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let cap = 1 + Random.State.int rng 32 in
      let c = Dchain.create ~capacity:cap in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      for step = 1 to 200 do
        match Random.State.int rng 4 with
        | 0 -> (
            match Dchain.allocate c ~now:step with
            | Some i ->
                if Hashtbl.mem live i then ok := false;
                Hashtbl.replace live i ()
            | None -> if Hashtbl.length live <> cap then ok := false)
        | 1 ->
            if Hashtbl.length live > 0 then begin
              let i = List.hd (List.of_seq (Hashtbl.to_seq_keys live)) in
              ignore (Dchain.free c i);
              Hashtbl.remove live i
            end
        | 2 ->
            if Hashtbl.length live > 0 then begin
              let i = List.hd (List.of_seq (Hashtbl.to_seq_keys live)) in
              ignore (Dchain.rejuvenate c i ~now:step)
            end
        | _ ->
            let freed = Dchain.expire_before c ~threshold:(step - 50) in
            List.iter (Hashtbl.remove live) freed
      done;
      !ok && Dchain.allocated c = Hashtbl.length live)

(* --- capacity-boundary behaviour (stress-harness regressions) ------------- *)

let next_pow2 n =
  let p = ref 1 in
  while !p < n do
    p := !p * 2
  done;
  !p

(* a rotating erase/insert window must be absorbed by same-size rebuilds:
   before the tombstone fix the table doubled on every load breach and
   grew without bound *)
let test_intmap_tombstone_bounded () =
  let window = 32 in
  let m = Intmap.create ~capacity:(window + 1) in
  for i = 0 to window - 1 do
    Alcotest.(check bool) "seed" true (Intmap.put m i i)
  done;
  for i = 0 to 9_999 do
    Alcotest.(check bool) "erase" true (Intmap.erase m i);
    Alcotest.(check bool) "insert" true (Intmap.put m (i + window) i)
  done;
  Alcotest.(check int) "window intact" window (Intmap.length m);
  Alcotest.(check bool)
    (Printf.sprintf "table bounded (%d slots)" (Intmap.table_slots m))
    true
    (Intmap.table_slots m <= next_pow2 (4 * (window + 2)));
  let max_probe, _ = Intmap.probe_stats m in
  Alcotest.(check bool) "probes short" true (max_probe <= 64);
  for i = 10_000 to 10_000 + window - 1 do
    Alcotest.(check int) (Printf.sprintf "resident %d" i) (i - window)
      (Intmap.find m i ~absent:(-1))
  done

let prop_intmap_table_bound =
  QCheck.Test.make ~name:"intmap table stays within the rebuild law" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 1 100_000))
    (fun (capacity, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = Intmap.create ~capacity in
      let bound = max 16 (next_pow2 (4 * (capacity + 1))) in
      let ok = ref true in
      for _ = 1 to 2_000 do
        let k = Random.State.int rng 400 in
        (match Random.State.int rng 2 with
        | 0 -> ignore (Intmap.put m k k)
        | _ -> ignore (Intmap.erase m k));
        if Intmap.table_slots m > bound then ok := false
      done;
      !ok)

(* allocate_at at the capacity boundary: full chain refuses, freeing one
   slot re-admits, and out-of-order touches land in recency order *)
let test_dchain_allocate_at_boundaries () =
  let c = Dchain.create ~capacity:8 in
  let touches = [ 5; 1; 9; 3; 9; 2; 9; 0 ] in
  List.iter
    (fun touched ->
      match Dchain.allocate_at c ~touched with
      | Some _ -> ()
      | None -> Alcotest.fail "allocate_at refused below capacity")
    touches;
  Alcotest.(check int) "full" 8 (Dchain.allocated c);
  Alcotest.(check (option int)) "over capacity" None (Dchain.allocate_at c ~touched:7);
  let order = ref [] in
  Dchain.iter_allocated c (fun _ touch -> order := touch :: !order);
  Alcotest.(check (list int)) "recency order"
    (List.sort compare touches) (List.rev !order);
  (match Dchain.oldest c with
  | Some i -> Alcotest.(check bool) "free oldest" true (Dchain.free c i)
  | None -> Alcotest.fail "full chain has an oldest");
  Alcotest.(check bool) "re-admitted" true (Dchain.allocate_at c ~touched:4 <> None)

let test_dchain_expire_full_chain () =
  let n = 1_000 in
  let c = Dchain.create ~capacity:n in
  for i = 0 to n - 1 do
    ignore (Dchain.allocate_at c ~touched:i)
  done;
  let swept = Dchain.expire_before c ~threshold:n in
  Alcotest.(check int) "everything expired" n (List.length swept);
  Alcotest.(check int) "chain drained" 0 (Dchain.allocated c);
  (* the index pool survives a full sweep *)
  for i = 0 to n - 1 do
    if Dchain.allocate_at c ~touched:i = None then Alcotest.fail "refill refused"
  done;
  Alcotest.(check int) "refilled" n (Dchain.allocated c)

let prop_dchain_allocate_at_sorted =
  QCheck.Test.make ~name:"allocate_at keeps the chain sorted by touch" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 64) (int_range 0 50))
    (fun touches ->
      let c = Dchain.create ~capacity:(List.length touches) in
      List.iter (fun touched -> ignore (Dchain.allocate_at c ~touched)) touches;
      let order = ref [] in
      Dchain.iter_allocated c (fun _ touch -> order := touch :: !order);
      let order = List.rev !order in
      order = List.sort compare touches)

let suite =
  [
    Alcotest.test_case "map basics" `Quick test_map_basics;
    Alcotest.test_case "map capacity" `Quick test_map_capacity;
    Alcotest.test_case "map erase absent" `Quick test_map_erase_absent;
    Alcotest.test_case "map binary keys" `Quick test_map_binary_keys;
    Alcotest.test_case "key length tag" `Quick test_key_length_tag;
    Alcotest.test_case "intmap basics" `Quick test_intmap_basics;
    Alcotest.test_case "intmap capacity and growth" `Quick test_intmap_capacity_and_growth;
    Alcotest.test_case "map hybrid views agree" `Quick test_map_hybrid_views_agree;
    Alcotest.test_case "map capacity spans views" `Quick test_map_capacity_spans_views;
    Alcotest.test_case "sketch packed consistency" `Quick test_sketch_packed_consistency;
    Alcotest.test_case "dchain allocate_idx" `Quick test_dchain_allocate_idx;
    QCheck_alcotest.to_alcotest prop_key_roundtrip;
    QCheck_alcotest.to_alcotest prop_intmap_vs_hashtbl;
    Alcotest.test_case "vector" `Quick test_vector;
    Alcotest.test_case "dchain allocate all" `Quick test_dchain_allocate_all;
    Alcotest.test_case "dchain expiry order" `Quick test_dchain_expiry_order;
    Alcotest.test_case "dchain free/reuse" `Quick test_dchain_free_and_reuse;
    Alcotest.test_case "dchain last touch" `Quick test_dchain_last_touch;
    Alcotest.test_case "sketch counts" `Quick test_sketch_counts;
    Alcotest.test_case "sketch over limit" `Quick test_sketch_over_limit;
    Alcotest.test_case "expire single map" `Quick test_expire_single_map;
    Alcotest.test_case "allocate flow rollback" `Quick test_allocate_flow_full_map;
    QCheck_alcotest.to_alcotest prop_sketch_overestimates;
    QCheck_alcotest.to_alcotest prop_dchain_conservation;
    Alcotest.test_case "intmap tombstone churn bounded" `Quick test_intmap_tombstone_bounded;
    Alcotest.test_case "dchain allocate_at boundaries" `Quick test_dchain_allocate_at_boundaries;
    Alcotest.test_case "dchain expire full chain" `Quick test_dchain_expire_full_chain;
    QCheck_alcotest.to_alcotest prop_intmap_table_bound;
    QCheck_alcotest.to_alcotest prop_dchain_allocate_at_sorted;
  ]
