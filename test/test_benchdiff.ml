(* The regression gate must read back exactly what Telemetry.to_json wrote,
   and its verdicts drive CI — test both the parser and the diff policy. *)

let ok = function Ok v -> v | Error e -> Alcotest.fail e

(* --- JSON parser ------------------------------------------------------------ *)

let test_json_atoms () =
  let p s = ok (Benchdiff.Json.parse s) in
  Alcotest.(check bool) "null" true (p "null" = Benchdiff.Json.Null);
  Alcotest.(check bool) "true" true (p " true " = Benchdiff.Json.Bool true);
  Alcotest.(check bool) "false" true (p "false" = Benchdiff.Json.Bool false);
  Alcotest.(check bool) "int" true (p "42" = Benchdiff.Json.Num 42.0);
  Alcotest.(check bool) "negative float" true (p "-2.5" = Benchdiff.Json.Num (-2.5));
  Alcotest.(check bool) "exponent" true (p "1e3" = Benchdiff.Json.Num 1000.0);
  Alcotest.(check bool) "string" true (p {|"hi"|} = Benchdiff.Json.Str "hi");
  Alcotest.(check bool) "escapes" true
    (p {|"a\"b\\c\nd\te"|} = Benchdiff.Json.Str "a\"b\\c\nd\te");
  Alcotest.(check bool) "unicode escape" true (p {|"A"|} = Benchdiff.Json.Str "A")

let test_json_structures () =
  let p s = ok (Benchdiff.Json.parse s) in
  Alcotest.(check bool) "empty array" true (p "[]" = Benchdiff.Json.Arr []);
  Alcotest.(check bool) "empty object" true (p "{}" = Benchdiff.Json.Obj []);
  let v = p {| {"a": [1, 2, {"b": "c"}], "d": null} |} in
  (match Benchdiff.Json.member "a" v with
  | Some (Benchdiff.Json.Arr [ _; _; inner ]) ->
      Alcotest.(check (option string)) "nested member" (Some "c")
        (Option.bind (Benchdiff.Json.member "b" inner) Benchdiff.Json.to_string_opt)
  | _ -> Alcotest.fail "bad array shape");
  Alcotest.(check bool) "null member" true (Benchdiff.Json.member "d" v = Some Benchdiff.Json.Null)

let test_json_errors () =
  let bad s =
    match Benchdiff.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted invalid json %S" s)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "tru";
  bad "1 2";
  bad "{\"a\": 1,}"

(* --- telemetry document roundtrip ------------------------------------------- *)

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let test_roundtrip_telemetry_doc () =
  let text =
    with_telemetry (fun () ->
        let c = Telemetry.Counter.make "bd.test_counter" ~doc:"x" in
        let c2 = Telemetry.Counter.make "bd.other \"quoted\"" ~doc:"y" in
        Telemetry.Counter.add c 42;
        Telemetry.Counter.add c2 7;
        Telemetry.Span.with_span "bd/span" (fun () -> ());
        Telemetry.to_json ~name:"roundtrip" (Telemetry.snapshot ()))
  in
  let doc = ok (Benchdiff.doc_of_string text) in
  Alcotest.(check string) "schema" Telemetry.schema_version doc.Benchdiff.schema;
  Alcotest.(check string) "name" "roundtrip" doc.Benchdiff.doc_name;
  Alcotest.(check (option int)) "counter" (Some 42) (Benchdiff.counter doc "bd.test_counter");
  Alcotest.(check (option int)) "escaped counter name" (Some 7)
    (Benchdiff.counter doc "bd.other \"quoted\"")

let test_rejects_foreign_schema () =
  (match Benchdiff.doc_of_string {|{"name": "x", "counters": []}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted document without schema");
  match Benchdiff.doc_of_string {|{"schema": "other/1", "counters": []}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted foreign schema"

(* --- diff policy ------------------------------------------------------------ *)

let doc counters =
  { Benchdiff.schema = "maestro-telemetry/1"; doc_name = "t"; counters = List.sort compare counters }

let names = List.map (fun c -> c.Benchdiff.counter_name)

let test_diff_thresholds () =
  let base = doc [ ("a", 100); ("b", 100); ("c", 100); ("d", 0); ("e", 0) ] in
  let cur = doc [ ("a", 116); ("b", 114); ("c", 80); ("d", 5); ("e", 0) ] in
  let r = Benchdiff.diff ~threshold:0.15 base cur in
  Alcotest.(check (list string)) "regressions" [ "a"; "d" ] (names r.Benchdiff.regressions);
  Alcotest.(check (list string)) "improvements" [ "c" ] (names r.Benchdiff.improvements);
  Alcotest.(check int) "unchanged" 2 r.Benchdiff.unchanged;
  Alcotest.(check bool) "not ok" false (Benchdiff.ok r);
  Alcotest.(check bool) "zero-base regression is infinite" true
    ((List.hd (List.filter (fun c -> c.Benchdiff.counter_name = "d") r.Benchdiff.regressions))
       .Benchdiff.ratio
    = infinity);
  let r_ok =
    Benchdiff.diff ~threshold:0.15 base
      (doc [ ("a", 110); ("b", 100); ("c", 100); ("d", 0); ("e", 0) ])
  in
  Alcotest.(check (list string)) "within threshold: no missing" [] r_ok.Benchdiff.missing;
  Alcotest.(check bool) "ok" true (Benchdiff.ok r_ok)

let test_diff_missing_and_only () =
  let base = doc [ ("a", 10); ("b", 20); ("t_ns", 500) ] in
  let cur = doc [ ("a", 10); ("new", 3) ] in
  let r = Benchdiff.diff base cur in
  Alcotest.(check (list string)) "missing" [ "b" ] r.Benchdiff.missing;
  Alcotest.(check (list string)) "added" [ "new" ] r.Benchdiff.added;
  Alcotest.(check bool) "missing fails gate" false (Benchdiff.ok r);
  let r_only = Benchdiff.diff ~only:[ "a" ] base cur in
  Alcotest.(check bool) "only-a passes" true (Benchdiff.ok r_only);
  Alcotest.(check int) "only-a compared" 1 r_only.Benchdiff.unchanged;
  let r_unknown = Benchdiff.diff ~only:[ "nope" ] base cur in
  Alcotest.(check (list string)) "unknown only-counter missing" [ "nope" ]
    r_unknown.Benchdiff.missing

let test_diff_timing_policy () =
  let base = doc [ ("work", 10); ("lat_ns", 100); ("phase_ms", 50); ("t_ns_x100", 70) ] in
  let cur = doc [ ("work", 10); ("lat_ns", 500); ("phase_ms", 500); ("t_ns_x100", 700) ] in
  Alcotest.(check bool) "timings skipped by default" true (Benchdiff.ok (Benchdiff.diff base cur));
  let r = Benchdiff.diff ~include_timings:true base cur in
  Alcotest.(check (list string)) "timings compared on demand"
    [ "lat_ns"; "phase_ms"; "t_ns_x100" ]
    (names r.Benchdiff.regressions)

let test_is_timing_counter () =
  List.iter
    (fun (name, want) ->
      Alcotest.(check bool) name want (Benchdiff.is_timing_counter name))
    [
      ("fastpath.toeplitz_ref_ns_x100", true);
      ("fastpath.pool_speedup_x100", true);
      ("span.total_ms", true);
      ("x_ns", true);
      ("nic.toeplitz_hashes", false);
      ("symbex.paths", false);
      ("pool.batches", false);
      ("nsomething", false);
    ]

let suite =
  [
    Alcotest.test_case "json atoms" `Quick test_json_atoms;
    Alcotest.test_case "json structures" `Quick test_json_structures;
    Alcotest.test_case "json rejects malformed input" `Quick test_json_errors;
    Alcotest.test_case "telemetry document roundtrip" `Quick test_roundtrip_telemetry_doc;
    Alcotest.test_case "foreign schema rejected" `Quick test_rejects_foreign_schema;
    Alcotest.test_case "diff thresholds" `Quick test_diff_thresholds;
    Alcotest.test_case "diff missing/added/only" `Quick test_diff_missing_and_only;
    Alcotest.test_case "diff timing policy" `Quick test_diff_timing_policy;
    Alcotest.test_case "timing-counter classification" `Quick test_is_timing_counter;
  ]
