(* Tests for RS3: the window-equation reduction and both solver backends. *)

open Packet
open Rs3

let rng seed = Random.State.make [| seed |]

let random_pkt ?(port = 0) st =
  Pkt.make ~port
    ~ip_src:(Random.State.int st 0x3fffffff)
    ~ip_dst:(Random.State.int st 0x3fffffff)
    ~src_port:(Random.State.int st 0x10000)
    ~dst_port:(Random.State.int st 0x10000)
    ()

let hash_on problem keys port pkt =
  match Nic.Field_set.hash_input problem.Problem.field_sets.(port) pkt with
  | Some d -> Nic.Toeplitz.hash_int ~key:keys.(port) d
  | None -> Alcotest.fail "no hash input"

let solve_exn ?backend problem =
  match Solve.solve ?backend ~seed:99 problem with
  | Ok s -> s
  | Error (_, e) -> Alcotest.fail e

(* --- constraint constructors --------------------------------------------- *)

let test_cstr_normalizes_ports () =
  let c = Cstr.make ~port_a:1 ~port_b:0 [ (Field.Ip_src, Field.Ip_dst) ] in
  Alcotest.(check int) "a" 0 c.Cstr.port_a;
  Alcotest.(check int) "b" 1 c.Cstr.port_b;
  Alcotest.(check bool) "pairs flipped" true
    (c.Cstr.pairs = [ { Cstr.fa = Field.Ip_dst; fb = Field.Ip_src; bits = 32 } ])

let test_cstr_rejects_width_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Cstr.make ~port_a:0 ~port_b:0 [ (Field.Ip_src, Field.Src_port) ]);
       false
     with Invalid_argument _ -> true)

let test_self_identity () =
  Alcotest.(check bool) "identity" true
    (Cstr.is_self_identity (Cstr.same_flow ~port:0 [ Field.Ip_src; Field.Ip_dst ]));
  Alcotest.(check bool) "symmetric is not" false
    (Cstr.is_self_identity (Cstr.symmetric ~port_a:0 ~port_b:0))

(* --- problems ------------------------------------------------------------ *)

let fw_problem () =
  (* the firewall: 5-tuple per port, sessions symmetric across ports *)
  match
    Problem.for_constraints ~nports:2
      [
        Cstr.same_flow ~port:0 [ Field.Ip_src; Field.Ip_dst; Field.Src_port; Field.Dst_port ];
        Cstr.same_flow ~port:1 [ Field.Ip_src; Field.Ip_dst; Field.Src_port; Field.Dst_port ];
        Cstr.symmetric ~port_a:0 ~port_b:1;
      ]
  with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let policer_problem () =
  match Problem.for_constraints ~nports:2 [ Cstr.same_flow ~port:1 [ Field.Ip_dst ] ] with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let nat_problem () =
  (* LAN shards on the server (dst), WAN on the server (src), cross-linked *)
  match
    Problem.for_constraints ~nports:2
      [
        Cstr.same_flow ~port:0 [ Field.Ip_dst; Field.Dst_port ];
        Cstr.same_flow ~port:1 [ Field.Ip_src; Field.Src_port ];
        Cstr.make ~port_a:0 ~port_b:1
          [ (Field.Ip_dst, Field.Ip_src); (Field.Dst_port, Field.Src_port) ];
      ]
  with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_identity_constraints_leave_keys_free () =
  let p =
    match
      Problem.for_constraints ~nports:1
        [ Cstr.same_flow ~port:0 [ Field.Ip_src; Field.Ip_dst; Field.Src_port; Field.Dst_port ] ]
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list pass)) "no equations" [] (Window.equations p);
  let s = solve_exn p in
  Alcotest.(check int) "all bits free" (Problem.key_bits p) s.Solve.free_bits

let test_fw_solution_is_symmetric () =
  let p = fw_problem () in
  let s = solve_exn p in
  let st = rng 5 in
  for _ = 1 to 200 do
    let pkt = random_pkt st in
    (* the WAN sees the reply: src/dst swapped, hashed with the WAN key *)
    let h_lan = hash_on p s.Solve.keys 0 pkt in
    let h_wan = hash_on p s.Solve.keys 1 (Pkt.flip pkt) in
    Alcotest.(check int) "reply meets its flow" h_lan h_wan
  done

let test_fw_distinct_flows_spread () =
  let p = fw_problem () in
  let s = solve_exn p in
  let st = rng 7 in
  let seen = Hashtbl.create 256 in
  for _ = 1 to 256 do
    Hashtbl.replace seen (hash_on p s.Solve.keys 0 (random_pkt st)) ()
  done;
  Alcotest.(check bool) "spreads" true (Hashtbl.length seen > 200)

let test_policer_ignores_ports_and_src () =
  let p = policer_problem () in
  let s = solve_exn p in
  let st = rng 11 in
  for _ = 1 to 200 do
    let a = random_pkt st in
    let b = { (random_pkt st) with Pkt.ip_dst = a.Pkt.ip_dst } in
    Alcotest.(check int) "same destination meets"
      (hash_on p s.Solve.keys 1 a) (hash_on p s.Solve.keys 1 b)
  done;
  (* but different destinations spread *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (hash_on p s.Solve.keys 1 (random_pkt st)) ()
  done;
  Alcotest.(check bool) "distinct destinations spread" true (Hashtbl.length seen > 100)

let test_nat_cross_port_server_sharding () =
  let p = nat_problem () in
  let s = solve_exn p in
  let st = rng 13 in
  for _ = 1 to 200 do
    let lan = random_pkt st ~port:0 in
    (* any WAN packet from the same server must land with the LAN flow *)
    let wan =
      Pkt.make ~port:1 ~ip_src:lan.Pkt.ip_dst
        ~ip_dst:(Random.State.int st 0x3fffffff)
        ~src_port:lan.Pkt.dst_port
        ~dst_port:(Random.State.int st 0x10000)
        ()
    in
    Alcotest.(check int) "server-sharded" (hash_on p s.Solve.keys 0 lan)
      (hash_on p s.Solve.keys 1 wan)
  done

let test_disjoint_requirements_rejected () =
  (* rule R3 as seen by the solver: sharding by src on one map and by dst on
     another forces a constant hash, which the quality test rejects *)
  match
    Problem.for_constraints ~nports:1
      [ Cstr.same_flow ~port:0 [ Field.Ip_src ]; Cstr.same_flow ~port:0 [ Field.Ip_dst ] ]
  with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      match Solve.solve ~seed:1 p with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected degenerate-hash rejection")

let test_sat_backend_agrees () =
  List.iter
    (fun problem ->
      let p = problem () in
      let s = solve_exn ~backend:`Sat p in
      (match Validate.check_constraints p ~keys:s.Solve.keys ~rng:(rng 3) ~trials:100 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check bool) "sat quality" true
        (Validate.quality_ok p ~keys:s.Solve.keys ~rng:(rng 4)))
    [ fw_problem; policer_problem; nat_problem ]

let test_validate_catches_bad_keys () =
  let p = fw_problem () in
  let st = rng 17 in
  (* random unconstrained keys almost surely break the symmetry *)
  let keys = Array.init 2 (fun _ -> Bitvec.random st (8 * 52)) in
  Alcotest.(check bool) "violation detected" true
    (Result.is_error (Validate.check_constraints p ~keys ~rng:st ~trials:200))

let test_spread_detects_constant_hash () =
  let zero = Bitvec.create (8 * 52) in
  let s =
    Validate.spread_of_key ~key:zero ~field_set:Nic.Field_set.ipv4_tcp ~rng:(rng 19) ~trials:500
  in
  Alcotest.(check bool) "constant" true s.Validate.constant_hash

(* The reproduction's Toeplitz finding: sharding on one address over a rigid
   ports-bearing input leaves exactly ONE effective key bit — the zero
   windows of the ignored fields overlap all but bit 63 of the key.  The
   surviving hash (the bit-reversed address when k[63]=1) is full-rank, but
   there is no key randomization freedom at all: every accepted key computes
   the SAME hash function, defeating the §5 DoS defense — and its queue-index
   bits are the address's high bits, which carry almost no entropy in real
   traffic.  Flex-extracted subset inputs (what the E810 model offers) keep
   hundreds of free key bits instead. *)
let test_rigid_input_has_no_key_freedom () =
  let p =
    Problem.make ~field_sets:[ Nic.Field_set.ipv4_tcp ]
      [ Cstr.same_flow ~port:0 [ Field.Ip_dst ] ]
  in
  match (Solve.solve ~seed:3 p, Solve.solve ~seed:77 p) with
  | Ok a, Ok b ->
      let st = rng 31 in
      for _ = 1 to 200 do
        let pkt = random_pkt st in
        (* different seeds, same hash values: no randomization freedom *)
        Alcotest.(check int) "hash is forced" (hash_on p a.Solve.keys 0 pkt)
          (hash_on p b.Solve.keys 0 pkt)
      done;
      (* whereas the flex-extracted formulation keeps the key free *)
      let q =
        Problem.make
          ~field_sets:[ Nic.Field_set.make [ Field.Ip_dst ] ]
          [ Cstr.same_flow ~port:0 [ Field.Ip_dst ] ]
      in
      (match (Solve.solve ~seed:3 q, Solve.solve ~seed:77 q) with
      | Ok a', Ok b' ->
          let differs = ref false in
          for _ = 1 to 50 do
            let pkt = random_pkt st in
            if hash_on q a'.Solve.keys 0 pkt <> hash_on q b'.Solve.keys 0 pkt then
              differs := true
          done;
          Alcotest.(check bool) "flex keys are randomizable" true !differs
      | _ -> Alcotest.fail "flex formulation should solve")
  | Error _, _ | _, Error _ ->
      (* also acceptable: the quality gate refuses the rigid workaround *)
      ()

let test_problem_rejects_uncoverable_fields () =
  (* MAC-keyed sharding cannot be expressed on any modeled NIC *)
  Alcotest.(check bool) "error" true
    (Result.is_error
       (Problem.for_constraints ~nports:1
          [ Cstr.make ~port_a:0 ~port_b:0 [ (Field.Eth_src, Field.Eth_src) ] ]))

(* --- the §5 collision attack ------------------------------------------------ *)

let test_attack_finds_collisions () =
  let st = rng 23 in
  let key = Bitvec.random st (52 * 8) in
  let field_set = Nic.Field_set.ipv4_tcp in
  let pkts = Attack.colliding_packets ~key ~field_set ~target_hash:0x12345678 ~rng:st ~n:100 in
  Alcotest.(check int) "count" 100 (List.length pkts);
  List.iter
    (fun p ->
      match Nic.Field_set.hash_input field_set p with
      | Some d ->
          Alcotest.(check int) "hash is the target" 0x12345678 (Nic.Toeplitz.hash_int ~key d)
      | None -> Alcotest.fail "no input")
    pkts;
  Alcotest.(check (float 0.001)) "fully colliding" 1.0
    (Attack.collision_rate ~key ~field_set pkts)

let test_attack_defeated_by_rekeying () =
  let st = rng 29 in
  let key = Bitvec.random st (52 * 8) in
  let other = Bitvec.random st (52 * 8) in
  let field_set = Nic.Field_set.ipv4_tcp in
  let pkts = Attack.colliding_packets ~key ~field_set ~target_hash:0xdead00d ~rng:st ~n:200 in
  (* under an independently drawn key the collision set falls apart *)
  Alcotest.(check bool) "spread under a fresh key" true
    (Attack.collision_rate ~key:other ~field_set pkts < 0.2)

(* --- properties ----------------------------------------------------------- *)

let prop_solutions_always_validate =
  QCheck.Test.make ~name:"gauss solutions satisfy their constraints" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let p = fw_problem () in
      match Solve.solve ~seed p with
      | Error _ -> false
      | Ok s ->
          Result.is_ok
            (Validate.check_constraints p ~keys:s.Solve.keys ~rng:(rng seed) ~trials:50))

let prop_backends_equisatisfiable =
  QCheck.Test.make ~name:"gauss and sat agree on satisfiability" ~count:10
    QCheck.(int_range 0 100)
    (fun seed ->
      let p = nat_problem () in
      let a = Result.is_ok (Solve.solve ~backend:`Gauss ~seed p) in
      let b = Result.is_ok (Solve.solve ~backend:`Sat ~seed p) in
      a = b)

let suite =
  [
    Alcotest.test_case "cstr normalizes ports" `Quick test_cstr_normalizes_ports;
    Alcotest.test_case "cstr width mismatch" `Quick test_cstr_rejects_width_mismatch;
    Alcotest.test_case "self identity" `Quick test_self_identity;
    Alcotest.test_case "identity constraints leave keys free" `Quick
      test_identity_constraints_leave_keys_free;
    Alcotest.test_case "fw keys are symmetric across ports" `Quick test_fw_solution_is_symmetric;
    Alcotest.test_case "fw distinct flows spread" `Quick test_fw_distinct_flows_spread;
    Alcotest.test_case "policer shards on dst ip only" `Quick test_policer_ignores_ports_and_src;
    Alcotest.test_case "nat shards on the server" `Quick test_nat_cross_port_server_sharding;
    Alcotest.test_case "disjoint requirements rejected (R3)" `Quick
      test_disjoint_requirements_rejected;
    Alcotest.test_case "sat backend agrees" `Quick test_sat_backend_agrees;
    Alcotest.test_case "validate catches bad keys" `Quick test_validate_catches_bad_keys;
    Alcotest.test_case "spread detects constant hash" `Quick test_spread_detects_constant_hash;
    Alcotest.test_case "uncoverable fields rejected" `Quick test_problem_rejects_uncoverable_fields;
    Alcotest.test_case "rigid input leaves no key freedom" `Quick
      test_rigid_input_has_no_key_freedom;
    Alcotest.test_case "attack finds exact collisions" `Quick test_attack_finds_collisions;
    Alcotest.test_case "attack defeated by re-keying" `Quick test_attack_defeated_by_rekeying;
    QCheck_alcotest.to_alcotest prop_solutions_always_validate;
    QCheck_alcotest.to_alcotest prop_backends_equisatisfiable;
  ]
