(* Tests for the performance model: machine ceilings, cache model, profiles,
   throughput laws. *)

let machine = Sim.Machine.xeon_6226r

let test_line_rate () =
  (* 64B frames: 100G / (84B * 8) ≈ 148.8 Mpps *)
  let pps = Sim.Machine.line_rate_pps machine ~frame_bytes:64 in
  Alcotest.(check bool) "148Mpps" true (Float.abs ((pps /. 1e6) -. 148.8) < 1.0)

let test_pcie_shape () =
  (* the Fig. 8 anchor: ~90 Mpps for 64B frames and near line rate at 1500B *)
  let small = Sim.Machine.pcie_pps machine ~frame_bytes:64 /. 1e6 in
  Alcotest.(check bool) (Printf.sprintf "64B ~90Mpps (got %.1f)" small) true
    (small > 80.0 && small < 100.0);
  let gbps1500 = Sim.Machine.pcie_pps machine ~frame_bytes:1500 *. 1500.0 *. 8.0 /. 1e9 in
  Alcotest.(check bool) "1500B near line rate" true (gbps1500 > 90.0)

let test_peak_monotone_in_gbps () =
  (* throughput in Gbps grows with packet size (Fig. 8 blue curve) *)
  let gbps size = Sim.Machine.peak_pps machine ~frame_bytes:size *. float_of_int size *. 8.0 /. 1e9 in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "monotone" true (gbps a < gbps b);
        check rest
    | _ -> ()
  in
  check Traffic.Gen.packet_sizes

let test_mem_hierarchy_monotone () =
  let cost ws = Sim.Cost.mem_access_cycles machine ~ws_bytes:ws in
  Alcotest.(check bool) "l1 resident" true (cost 1000.0 <= 4.01);
  Alcotest.(check bool) "l2 slower" true (cost 500_000.0 > cost 10_000.0);
  Alcotest.(check bool) "llc slower" true (cost 10_000_000.0 > cost 500_000.0);
  Alcotest.(check bool) "dram slower" true (cost 1e9 > cost 10_000_000.0)

let test_working_set_shards () =
  let w = Sim.Workload.read_heavy ~flows:4096 ~pkts:8000 "fw" in
  let p = Sim.Workload.profile_of w in
  let full = Sim.Cost.working_set_bytes p ~shards:1 in
  let sharded = Sim.Cost.working_set_bytes p ~shards:16 in
  Alcotest.(check bool) "16x smaller" true (Float.abs ((full /. sharded) -. 16.0) < 0.1)

let test_profile_read_heavy_fw () =
  let w = Sim.Workload.read_heavy "fw" in
  let p = Sim.Workload.profile_of w in
  Alcotest.(check bool) "low write fraction" true (p.Sim.Profile.write_pkt_fraction < 0.06);
  Alcotest.(check bool) "rejuvenation visible to TM" true
    (p.Sim.Profile.tm_writes_per_pkt > 0.9);
  Alcotest.(check int) "nothing dropped" 0 p.Sim.Profile.drops

let test_profile_zipf_caches_better () =
  let u = Sim.Workload.read_heavy ~flows:1000 ~pkts:30_000 "fw" in
  let z = Sim.Workload.zipf ~pkts:30_000 "fw" in
  let pu = Sim.Workload.profile_of u and pz = Sim.Workload.profile_of z in
  Alcotest.(check bool) "zipf has fewer effective flows" true
    (pz.Sim.Profile.effective_flows < 0.5 *. pu.Sim.Profile.effective_flows)

let plan_for ?(strategy = `Auto) name cores =
  let request = { Maestro.Pipeline.default_request with cores; strategy } in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let test_throughput_scales_then_caps () =
  let w = Sim.Workload.read_heavy "fw" in
  let p = Sim.Workload.profile_of w in
  let g cores = (Sim.Throughput.evaluate (plan_for "fw" cores) p w.Sim.Workload.trace).Sim.Throughput.gbps in
  Alcotest.(check bool) "2 cores ~2x" true (g 2 /. g 1 > 1.8);
  Alcotest.(check bool) "4 cores ~4x" true (g 4 /. g 1 > 3.6);
  let e16 = Sim.Throughput.evaluate (plan_for "fw" 16) p w.Sim.Workload.trace in
  Alcotest.(check string) "16 cores hits pcie" "pcie"
    (Sim.Throughput.bottleneck_name e16.Sim.Throughput.bottleneck)

let test_lock_law_collapses_on_writes () =
  let w = Sim.Workload.read_heavy "policer" in
  let p = Sim.Workload.profile_of w in
  let g cores =
    (Sim.Throughput.evaluate (plan_for ~strategy:`Force_locks "policer" cores) p
       w.Sim.Workload.trace).Sim.Throughput.gbps
  in
  Alcotest.(check bool) "16 cores worse than 2" true (g 16 < g 2)

let test_tm_rises_then_falls () =
  let w = Sim.Workload.read_heavy "fw" in
  let p = Sim.Workload.profile_of w in
  let g cores =
    (Sim.Throughput.evaluate (plan_for ~strategy:`Force_tm "fw" cores) p w.Sim.Workload.trace).Sim.Throughput.gbps
  in
  Alcotest.(check bool) "scales at first" true (g 4 > g 1);
  Alcotest.(check bool) "collapses at 16" true (g 16 < g 4)

let test_balanced_reta_helps_zipf () =
  let w = Sim.Workload.zipf "fw" in
  let p = Sim.Workload.profile_of w in
  let plan = plan_for "fw" 8 in
  let plain = Sim.Throughput.evaluate plan p w.Sim.Workload.trace in
  let balanced = Sim.Throughput.evaluate ~balanced_reta:true plan p w.Sim.Workload.trace in
  Alcotest.(check bool) "balancing helps" true
    (balanced.Sim.Throughput.gbps >= plain.Sim.Throughput.gbps);
  Alcotest.(check bool) "imbalance reduced" true
    (balanced.Sim.Throughput.imbalance <= plain.Sim.Throughput.imbalance +. 1e-9)

let test_latency_parallel_matches_sequential () =
  let w = Sim.Workload.read_heavy "fw" in
  let p = Sim.Workload.profile_of w in
  let l1 = Sim.Latency.probe (plan_for "fw" 1) p in
  let l16 = Sim.Latency.probe (plan_for "fw" 16) p in
  Alcotest.(check bool) "≈11us" true (l1.Sim.Latency.avg_us > 10.0 && l1.Sim.Latency.avg_us < 13.0);
  Alcotest.(check bool) "parallelization latency-neutral" true
    (Float.abs (l16.Sim.Latency.avg_us -. l1.Sim.Latency.avg_us) < 0.5)

let test_switch_pricing () =
  let price ~flows ~replicas = Sim.Cost.discipline_switch_cycles ~flows ~replicas () in
  (* a state-free switch still pays the quiesce stall *)
  Alcotest.(check bool) "stall floor" true (price ~flows:0 ~replicas:1 > 0.0);
  (* monotone in both the flow population and the replica fan-out *)
  Alcotest.(check bool) "more flows cost more" true
    (price ~flows:10_000 ~replicas:1 > price ~flows:1_000 ~replicas:1);
  Alcotest.(check bool) "seeding replicas costs more than a merge" true
    (price ~flows:1_000 ~replicas:4 > price ~flows:1_000 ~replicas:1);
  (* the default switch price is amortizable: a few calm epochs of 4096
     packets at ~line-rate per-packet cost dwarf one 1k-flow switch —
     the premise behind Adaptive.default_config's multi-epoch cooldown *)
  let epoch_cycles = 4096.0 *. Sim.Cost.default.Sim.Cost.base_cycles in
  Alcotest.(check bool) "switch pays for itself within a cooldown" true
    (price ~flows:1_000 ~replicas:4 < 2.0 *. epoch_cycles)

let test_workloads_exist_for_all_nfs () =
  List.iter
    (fun name ->
      let w = Sim.Workload.read_heavy ~pkts:2000 ~flows:500 name in
      let p = Sim.Workload.profile_of w in
      Alcotest.(check bool) (name ^ " profiled") true (p.Sim.Profile.pkts > 0))
    Nfs.Registry.names

let suite =
  [
    Alcotest.test_case "line rate" `Quick test_line_rate;
    Alcotest.test_case "pcie shape (Fig. 8 anchors)" `Quick test_pcie_shape;
    Alcotest.test_case "peak gbps monotone in size" `Quick test_peak_monotone_in_gbps;
    Alcotest.test_case "memory hierarchy monotone" `Quick test_mem_hierarchy_monotone;
    Alcotest.test_case "working set shards" `Quick test_working_set_shards;
    Alcotest.test_case "fw profile is read-heavy" `Quick test_profile_read_heavy_fw;
    Alcotest.test_case "zipf caches better" `Quick test_profile_zipf_caches_better;
    Alcotest.test_case "throughput scales then caps" `Quick test_throughput_scales_then_caps;
    Alcotest.test_case "lock law collapses on writes" `Quick test_lock_law_collapses_on_writes;
    Alcotest.test_case "tm rises then falls" `Quick test_tm_rises_then_falls;
    Alcotest.test_case "balanced reta helps zipf" `Quick test_balanced_reta_helps_zipf;
    Alcotest.test_case "latency neutral" `Quick test_latency_parallel_matches_sequential;
    Alcotest.test_case "discipline switch pricing" `Quick test_switch_pricing;
    Alcotest.test_case "workloads for all NFs" `Quick test_workloads_exist_for_all_nfs;
  ]
