(* Online RSS++ rebalancing: the flow→core invariant must survive live
   indirection-table changes, the balancer must never resurrect a
   written-off core, and the pool's migration accounting must agree with
   the offline study of the same trace. *)

let rng seed = Random.State.make [| seed |]

let plan_of ?(cores = 8) name =
  let request = { Maestro.Pipeline.default_request with cores } in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let zipf_trace ?(reply_fraction = 0.0) seed ~pkts ~nflows =
  let st = rng seed in
  let z = Traffic.Zipf.make ~exponent:1.2 ~nflows () in
  let flows = Traffic.Gen.flows st nflows in
  let spec = { Traffic.Gen.default_spec with pkts; reply_fraction } in
  Traffic.Zipf.trace ~spec st z ~flows

(* (a) between two consecutive rebalance points, every flow's packets land
   on exactly one core — the ordering guarantee of the quiesce protocol *)
let ordering_violations trace (s : Runtime.Pool.stats) =
  let points = Array.of_list s.Runtime.Pool.last_rebalance_points in
  let flow_core = Hashtbl.create 1024 in
  let seg = ref 0 and viol = ref 0 in
  Array.iteri
    (fun i pkt ->
      while !seg < Array.length points && i >= points.(!seg) do
        incr seg;
        Hashtbl.reset flow_core
      done;
      let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
      let core = s.Runtime.Pool.last_assignment.(i) in
      match Hashtbl.find_opt flow_core flow with
      | None -> Hashtbl.add flow_core flow core
      | Some c -> if c <> core then incr viol)
    trace;
  !viol

let test_pool_rebalance_flow_ordering () =
  let plan = plan_of ~cores:4 "fw" in
  let trace = zipf_trace 41 ~reply_fraction:0.3 ~pkts:6144 ~nflows:400 in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let mode = Runtime.Balancer.On { Runtime.Balancer.epoch_pkts = 1024; threshold = 0.0 } in
  let v = Runtime.Pool.run ~rebalance:mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check bool) "balancer engaged" true (s.Runtime.Pool.rebalances >= 1);
  Alcotest.(check int) "assignment covers the trace" (Array.length trace)
    (Array.length s.Runtime.Pool.last_assignment);
  Alcotest.(check int) "zero flow-ordering violations" 0 (ordering_violations trace s);
  Alcotest.(check bool) "rebalance points strictly ascending" true
    (let rec asc = function
       | a :: (b :: _ as rest) -> a < b && asc rest
       | _ -> true
     in
     asc s.Runtime.Pool.last_rebalance_points);
  Alcotest.(check bool) "migrated verdicts == sequential" true (verdicts_equal seq v)

(* (b) Reta.rebalance composed with Reta.remap never targets a written-off
   core, whatever the load profile and however many cores died *)
let prop_rebalance_remap_avoids_dead =
  QCheck.Test.make ~name:"rebalance+remap never targets a written-off core" ~count:100
    QCheck.(triple (int_range 0 1_000_000) (int_range 2 12) (int_range 1 6))
    (fun (seed, queues, ndead) ->
      QCheck.assume (ndead < queues);
      let st = rng seed in
      let reta = Nic.Reta.create ~size:64 ~queues () in
      let load =
        Array.init (Nic.Reta.size reta) (fun _ -> float_of_int (Random.State.int st 1000))
      in
      let live = Array.make queues true in
      let rec kill n =
        if n > 0 then begin
          let c = Random.State.int st queues in
          if live.(c) && Array.fold_left (fun a l -> a + Bool.to_int l) 0 live > 1 then
            live.(c) <- false;
          kill (n - 1)
        end
      in
      kill ndead;
      let moved = Nic.Reta.remap (Nic.Reta.rebalance reta ~bucket_load:load) ~live in
      Array.for_all (fun q -> live.(q)) (Nic.Reta.entries moved)
      && List.for_all (fun (_, _, target) -> live.(target)) (Nic.Reta.diff reta moved))

(* (c) the pool's migration accounting must agree with the offline study
   of the same trace: same shared table, same epochs, same threshold *)
let test_pool_agrees_with_study () =
  let epoch_pkts = 1024 and threshold = 0.5 in
  let plan = plan_of ~cores:4 "fw" in
  (* reply_fraction 0: every packet is LAN->WAN, one state entry per flow,
     nothing expires — the study's per-bucket distinct-flow count then
     equals the number of state entries the pool actually hands over *)
  let trace = zipf_trace 42 ~pkts:4096 ~nflows:300 in
  let r = Runtime.Rebalance.study_exn ~threshold plan trace ~epoch_pkts in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let mode = Runtime.Balancer.On { Runtime.Balancer.epoch_pkts; threshold } in
  let (_ : Dsl.Interp.action array) = Runtime.Pool.run ~rebalance:mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "rebalances agree" r.Runtime.Rebalance.rebalances
    s.Runtime.Pool.rebalances;
  Alcotest.(check int) "migrated buckets agree" r.Runtime.Rebalance.migrated_buckets
    s.Runtime.Pool.migrated_buckets;
  Alcotest.(check int) "migrated flows agree" r.Runtime.Rebalance.migrated_flows
    s.Runtime.Pool.migrated_flows;
  Alcotest.(check int) "no evictions" 0 s.Runtime.Pool.migration_drops

(* --- typed errors + mode parsing ------------------------------------------- *)

let test_study_short_trace_error () =
  let plan = plan_of ~cores:4 "fw" in
  let trace = zipf_trace 43 ~pkts:100 ~nflows:50 in
  (match Runtime.Rebalance.study plan trace ~epoch_pkts:4096 with
  | Ok _ -> Alcotest.fail "short trace must be rejected"
  | Error e ->
      Alcotest.(check bool) "message names the lengths" true
        (Astring_contains.contains e "4096" && Astring_contains.contains e "100"));
  match Runtime.Rebalance.study plan trace ~epoch_pkts:0 with
  | Ok _ -> Alcotest.fail "zero epoch must be rejected"
  | Error _ -> ()

let test_balancer_parse () =
  let ok s =
    match Runtime.Balancer.parse s with
    | Ok m -> m
    | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e)
  in
  (match ok "off" with
  | Runtime.Balancer.Off -> ()
  | _ -> Alcotest.fail "off");
  (match ok "on" with
  | Runtime.Balancer.On c ->
      Alcotest.(check int) "default epoch" Runtime.Balancer.default_config.epoch_pkts
        c.Runtime.Balancer.epoch_pkts
  | _ -> Alcotest.fail "on");
  (match ok "epoch=512,threshold=1.5" with
  | Runtime.Balancer.On c ->
      Alcotest.(check int) "epoch" 512 c.Runtime.Balancer.epoch_pkts;
      Alcotest.(check (float 1e-9)) "threshold" 1.5 c.Runtime.Balancer.threshold
  | _ -> Alcotest.fail "epoch+threshold");
  List.iter
    (fun bad ->
      match Runtime.Balancer.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" bad)
      | Error _ -> ())
    [ ""; "epoch=0"; "epoch=x"; "threshold=0.5"; "bogus"; "epoch=" ];
  (* round-trips for the CLI's printer *)
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Runtime.Balancer.to_string (ok s)))
    [ "off"; "epoch=512,threshold=1.5" ]

let suite =
  [
    Alcotest.test_case "pool rebalance preserves per-flow ordering" `Slow
      test_pool_rebalance_flow_ordering;
    QCheck_alcotest.to_alcotest prop_rebalance_remap_avoids_dead;
    Alcotest.test_case "pool migration counters agree with the study" `Slow
      test_pool_agrees_with_study;
    Alcotest.test_case "study rejects short traces with a typed error" `Quick
      test_study_short_trace_error;
    Alcotest.test_case "balancer mode parsing" `Quick test_balancer_parse;
  ]
