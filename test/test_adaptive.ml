(* Adaptive discipline switching: the hysteresis controller must never
   flap, admissibility must stay pinned to what compile time derived, and
   a live pool that switches rungs mid-trace — even with workers crashing
   in the switch epoch, in either order — must keep its verdicts equal to
   the sequential interpreter. *)

open Runtime.Adaptive

let rng seed = Random.State.make [| seed |]

let plan_of ?(cores = 4) ?(strategy = `Auto) name =
  let request = { Maestro.Pipeline.default_request with cores; strategy } in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

(* deterministic phase traces over ONE flow population: calm spreads the
   packets uniformly, skew concentrates them Zipf(2.5) on the heaviest
   flows — the imbalance signal flips while the state stays shared *)
let spec pkts = { Traffic.Gen.default_spec with pkts; reply_fraction = 0.0; fresh_fraction = 0.0 }

let calm_trace st ~flows ~pkts = Traffic.Gen.uniform ~spec:(spec pkts) st ~flows

let skew_trace st ~flows ~pkts =
  let z = Traffic.Zipf.make ~exponent:2.5 ~nflows:(List.length flows) () in
  Traffic.Zipf.trace ~spec:(spec pkts) st z ~flows

(* --- mode parsing ---------------------------------------------------------- *)

let mode_t =
  Alcotest.testable (fun fmt m -> Format.pp_print_string fmt (to_string m)) ( = )

let test_parse () =
  Alcotest.(check (result mode_t string)) "off" (Ok Off) (parse "off");
  Alcotest.(check (result mode_t string)) "on" (Ok (On default_config)) (parse "on");
  Alcotest.(check (result mode_t string)) "full spec"
    (Ok (On { epoch_pkts = 512; up = 2.0; down = 1.2; cooldown = 3 }))
    (parse "epochs=512,up=2,down=1.2,cooldown=3");
  Alcotest.(check (result mode_t string)) "partial spec keeps defaults"
    (Ok (On { default_config with up = 1.6 }))
    (parse "up=1.6");
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok m -> Alcotest.failf "parse %S should fail, got %s" bad (to_string m))
    [ ""; "bogus"; "epochs=0"; "epochs=abc"; "up=0.5"; "cooldown=-1"; "up=1.2,down=1.3"; "foo=1" ];
  (* to_string round-trips through parse *)
  List.iter
    (fun m ->
      Alcotest.(check (result mode_t string))
        (Printf.sprintf "round-trip %s" (to_string m))
        (Ok m)
        (parse (to_string m)))
    [ Off; On default_config; On { epoch_pkts = 64; up = 3.0; down = 1.05; cooldown = 0 } ]

(* --- admissibility --------------------------------------------------------- *)

let rungs_t =
  Alcotest.(result (list (testable (Fmt.of_to_string Maestro.Ladder.rung_name) ( = ))) string)

let test_ladder () =
  let open Maestro.Ladder in
  let l = ladder in
  Alcotest.check rungs_t "full descent"
    (Ok [ Shared_nothing; Scr; Lock_based; Serial ])
    (l ~strategy:Maestro.Plan.Shared_nothing ~scr_ok:true ~exact_migration:true);
  Alcotest.check rungs_t "no digest: SCR absent, step-down skips to lock"
    (Ok [ Shared_nothing; Lock_based; Serial ])
    (l ~strategy:Maestro.Plan.Shared_nothing ~scr_ok:false ~exact_migration:true);
  Alcotest.check rungs_t "lossy migration: shared-nothing absent even as the plan's rung"
    (Ok [ Scr; Lock_based; Serial ])
    (l ~strategy:Maestro.Plan.Shared_nothing ~scr_ok:true ~exact_migration:false);
  Alcotest.check rungs_t "SCR plan never climbs to shared-nothing"
    (Ok [ Scr; Lock_based; Serial ])
    (l ~strategy:Maestro.Plan.Scr ~scr_ok:true ~exact_migration:true);
  Alcotest.check rungs_t "lock plan"
    (Ok [ Lock_based; Serial ])
    (l ~strategy:Maestro.Plan.Lock_based ~scr_ok:true ~exact_migration:true);
  (match l ~strategy:Maestro.Plan.Load_balance ~scr_ok:true ~exact_migration:true with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load-balance plans must be rejected")

(* --- controller hysteresis ------------------------------------------------- *)

let decision_t =
  let pp fmt = function
    | Stay -> Format.pp_print_string fmt "stay"
    | Switch r -> Format.fprintf fmt "switch %s" (Maestro.Ladder.rung_name r)
    | Suppressed r -> Format.fprintf fmt "suppressed %s" (Maestro.Ladder.rung_name r)
  in
  Alcotest.testable pp ( = )

let cfg = { epoch_pkts = 1024; up = 1.5; down = 1.15; cooldown = 2 }
let full_ladder = Maestro.Ladder.[ Shared_nothing; Scr; Lock_based; Serial ]
let calm_obs = { imbalance = 1.0; drops = 0; restarts = 0; digest_bytes = 0 }
let skew_obs = { calm_obs with imbalance = 3.0 }
let droppy_obs = { calm_obs with drops = 1 }

let check_obs ctl name expected o =
  Alcotest.check decision_t name expected (observe ctl o)

let test_skew_steps_down_then_streak_up () =
  let ctl = create cfg ~ladder:full_ladder in
  Alcotest.(check string) "starts on the fastest admissible rung" "shared-nothing"
    (Maestro.Ladder.rung_name (rung ctl));
  check_obs ctl "calm holds the top rung" Stay calm_obs;
  check_obs ctl "calm again" Stay calm_obs;
  check_obs ctl "skew steps down one rung" (Switch Maestro.Ladder.Scr) skew_obs;
  commit ctl Maestro.Ladder.Scr;
  (* imbalance only pressures shared-nothing: SCR is skew-immune, so
     sustained skew settles here instead of ratcheting down to serial *)
  check_obs ctl "skew on SCR: cooldown tick, stay" Stay skew_obs;
  check_obs ctl "skew on SCR: stay" Stay skew_obs;
  check_obs ctl "skew on SCR past cooldown: still stay" Stay skew_obs;
  (* ...but it also blocks the climb back up until the trace calms *)
  check_obs ctl "calm streak 1 of 3" Stay calm_obs;
  check_obs ctl "calm streak 2 of 3" Stay calm_obs;
  check_obs ctl "cooldown+1 calm epochs step back up" (Switch Maestro.Ladder.Shared_nothing)
    calm_obs;
  commit ctl Maestro.Ladder.Shared_nothing;
  Alcotest.(check int) "two switches" 2 (switches ctl);
  Alcotest.(check int) "nothing suppressed" 0 (flap_suppressed ctl);
  Alcotest.(check (list (pair int (testable (Fmt.of_to_string Maestro.Ladder.rung_name) ( = )))))
    "switch epochs in order"
    [ (3, Maestro.Ladder.Scr); (9, Maestro.Ladder.Shared_nothing) ]
    (switch_epochs ctl);
  (* residency counts the rung each epoch ran on: 1-3 shared-nothing,
     4-9 SCR (the epoch-9 observation still ran on SCR) *)
  List.iter
    (fun (r, expect) ->
      Alcotest.(check (option int))
        (Maestro.Ladder.rung_name r) (Some expect)
        (List.assoc_opt r (residency ctl)))
    Maestro.Ladder.[ (Shared_nothing, 3); (Scr, 6); (Lock_based, 0); (Serial, 0) ]

let test_cooldown_suppresses_flap () =
  let ctl = create cfg ~ladder:full_ladder in
  (* drops pressure every rung; oscillate pressure/calm and count what the
     cooldown window swallows *)
  check_obs ctl "drops step down" (Switch Maestro.Ladder.Scr) droppy_obs;
  commit ctl Maestro.Ladder.Scr;
  check_obs ctl "calm inside cooldown" Stay calm_obs;
  check_obs ctl "pressure inside cooldown is suppressed"
    (Suppressed Maestro.Ladder.Lock_based) droppy_obs;
  Alcotest.(check int) "suppression counted" 1 (flap_suppressed ctl);
  check_obs ctl "cooldown over: pressure switches" (Switch Maestro.Ladder.Lock_based) droppy_obs;
  commit ctl Maestro.Ladder.Lock_based;
  Alcotest.(check int) "two switches despite four pressured epochs" 2 (switches ctl);
  (* a long oscillation never commits more than one switch per cooldown
     window *)
  for i = 0 to 19 do
    match observe ctl (if i mod 2 = 0 then droppy_obs else calm_obs) with
    | Switch r -> commit ctl r
    | Stay | Suppressed _ -> ()
  done;
  Alcotest.(check bool) "oscillation is rate-limited" true
    (switches ctl <= 2 + (20 / (cfg.cooldown + 1)));
  Alcotest.(check bool) "and the window did suppress" true (flap_suppressed ctl >= 2)

let test_deferred_switch_retries () =
  let ctl = create cfg ~ladder:full_ladder in
  check_obs ctl "pressure asks for SCR" (Switch Maestro.Ladder.Scr) droppy_obs;
  (* the pool declined (crash recovery ran this barrier) *)
  defer ctl Maestro.Ladder.Scr;
  check_obs ctl "deferred switch retries before fresh analysis"
    (Switch Maestro.Ladder.Scr) calm_obs;
  commit ctl Maestro.Ladder.Scr;
  Alcotest.(check string) "committed after retry" "state-compute-replication"
    (Maestro.Ladder.rung_name (rung ctl));
  Alcotest.(check int) "one switch" 1 (switches ctl)

let test_commit_rejects_inadmissible () =
  let ctl = create cfg ~ladder:Maestro.Ladder.[ Shared_nothing; Lock_based; Serial ] in
  Alcotest.check_raises "SCR is not on this ladder"
    (Invalid_argument "Adaptive.commit: rung not admissible") (fun () ->
      commit ctl Maestro.Ladder.Scr)

(* --- live pool: calm → skew → calm ----------------------------------------- *)

(* rung of each epoch, from the initial rung and the committed switches:
   a switch at epoch E takes effect from epoch E+1 *)
let rung_of_epoch switch_epochs ~initial epoch =
  List.fold_left
    (fun acc (e, r) -> if epoch > e then r else acc)
    initial switch_epochs

(* per-flow ordering across switches: between two consecutive rebalance
   points every flow lands on one core — except on SCR epochs, where the
   round-robin spray moves OWNERSHIP per batch by design while each
   replica still applies the global stream in order *)
let ordering_violations trace (s : Runtime.Pool.stats) ~epoch_pkts ~initial =
  let points = Array.of_list s.Runtime.Pool.last_rebalance_points in
  let flow_core = Hashtbl.create 1024 in
  let seg = ref 0 and viol = ref 0 in
  Array.iteri
    (fun i pkt ->
      while !seg < Array.length points && i >= points.(!seg) do
        incr seg;
        Hashtbl.reset flow_core
      done;
      let epoch = 1 + (i / epoch_pkts) in
      if rung_of_epoch s.Runtime.Pool.switch_epochs ~initial epoch <> Maestro.Ladder.Scr
      then begin
        let flow = Packet.Flow.normalize (Packet.Flow.of_pkt pkt) in
        let core = s.Runtime.Pool.last_assignment.(i) in
        match Hashtbl.find_opt flow_core flow with
        | None -> Hashtbl.add flow_core flow core
        | Some c -> if c <> core then incr viol
      end)
    trace;
  !viol

let pool_mode = On { epoch_pkts = 1024; up = 2.0; down = 1.3; cooldown = 1 }

let test_pool_switches_with_traffic () =
  let plan = plan_of ~cores:4 "fw" in
  let flows = Traffic.Gen.flows (rng 7) 1024 in
  let trace =
    Array.concat
      [
        calm_trace (rng 11) ~flows ~pkts:4096;
        skew_trace (rng 12) ~flows ~pkts:4096;
        calm_trace (rng 13) ~flows ~pkts:6144;
      ]
  in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check bool) "switched down and back" true (s.Runtime.Pool.switches >= 2);
  (match s.Runtime.Pool.switch_epochs with
  | (_, Maestro.Ladder.Scr) :: _ -> ()
  | other ->
      Alcotest.failf "first switch should adopt SCR, got [%s]"
        (String.concat "; "
           (List.map
              (fun (e, r) -> Printf.sprintf "%d:%s" e (Maestro.Ladder.rung_name r))
              other)));
  let res r = Option.value ~default:0 (List.assoc_opt r s.Runtime.Pool.rung_residency) in
  Alcotest.(check bool) "skew phase ran on SCR" true (res Maestro.Ladder.Scr >= 3);
  Alcotest.(check bool) "calm phases ran sharded" true (res Maestro.Ladder.Shared_nothing >= 6);
  Alcotest.(check bool) "switch epochs strictly ascending" true
    (let rec asc = function
       | (a, _) :: ((b, _) :: _ as rest) -> a < b && asc rest
       | _ -> true
     in
     asc s.Runtime.Pool.switch_epochs);
  Alcotest.(check int) "one rebalance point per switch" s.Runtime.Pool.switches
    (List.length s.Runtime.Pool.last_rebalance_points);
  Alcotest.(check int) "zero flow-ordering violations" 0
    (ordering_violations trace s ~epoch_pkts:1024 ~initial:Maestro.Ladder.Shared_nothing);
  Alcotest.(check bool) "verdicts == sequential across switches" true (verdicts_equal seq v)

let test_pool_calm_never_switches () =
  let plan = plan_of ~cores:4 "fw" in
  let flows = Traffic.Gen.flows (rng 8) 1024 in
  let trace = calm_trace (rng 21) ~flows ~pkts:4096 in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "no switches" 0 s.Runtime.Pool.switches;
  Alcotest.(check (list (pair (testable (Fmt.of_to_string Maestro.Ladder.rung_name) ( = )) int)))
    "whole run on the plan's rung"
    Maestro.Ladder.[ (Shared_nothing, 4); (Scr, 0); (Lock_based, 0); (Serial, 0) ]
    s.Runtime.Pool.rung_residency;
  Alcotest.(check bool) "verdicts == sequential" true (verdicts_equal seq v)

(* --- crashes in the switch epoch, both orders ------------------------------ *)

(* order 1: the crash is recovered FIRST (old rung's replay path), the
   switch is deferred to the next barrier.  Skew from packet zero makes
   the very first barrier decide a switch, and every core's first batch
   crashes, so the switch epoch is guaranteed to also be a crash epoch. *)
let test_pool_crash_defers_switch () =
  let plan = plan_of ~cores:4 "fw" in
  let flows = Traffic.Gen.flows (rng 9) 1024 in
  let trace = skew_trace (rng 31) ~flows ~pkts:8192 in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  (match Faults.parse "crash@0:0;crash@1:0;crash@2:0;crash@3:0" with
  | Error e -> Alcotest.fail e
  | Ok p -> Faults.install p);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check bool) "workers crashed and restarted" true (s.Runtime.Pool.restarts >= 1);
  Alcotest.(check bool) "the switch still happened" true (s.Runtime.Pool.switches >= 1);
  (match s.Runtime.Pool.switch_epochs with
  | (e, _) :: _ ->
      Alcotest.(check bool) "switch deferred past the crash epoch" true (e >= 2)
  | [] -> Alcotest.fail "no switch committed");
  Alcotest.(check bool) "verdicts == sequential despite crash + deferred switch" true
    (verdicts_equal seq v)

(* order 2: the switch commits FIRST, the crash lands on the NEW rung —
   the SCR replica is rebuilt from the seeded snapshot plus the digest
   log since rung entry.  The batch threshold (60) is unreachable before
   the switch (calm epochs give ~8 batches/core, the skew epoch at most
   ~26 more) and certain after it (SCR feeds every core every batch). *)
let test_pool_crash_after_switch_rebuilds_replica () =
  let plan = plan_of ~cores:4 "fw" in
  let flows = Traffic.Gen.flows (rng 10) 1024 in
  let trace =
    Array.concat
      [ calm_trace (rng 41) ~flows ~pkts:2048; skew_trace (rng 42) ~flows ~pkts:8192 ]
  in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  (match Faults.parse "crash@2:60" with
  | Error e -> Alcotest.fail e
  | Ok p -> Faults.install p);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check bool) "switched to SCR" true
    (List.exists (fun (_, r) -> r = Maestro.Ladder.Scr) s.Runtime.Pool.switch_epochs);
  Alcotest.(check bool) "crash recovered on the new rung" true (s.Runtime.Pool.restarts >= 1);
  Alcotest.(check bool) "replica rebuilt from snapshot + digest log" true
    (s.Runtime.Pool.scr_rebuilds >= 1);
  Alcotest.(check bool) "verdicts == sequential despite mid-rung rebuild" true
    (verdicts_equal seq v)

(* --- switching on a written-off core set ----------------------------------- *)

let test_pool_switch_on_written_off_cores () =
  let plan = plan_of ~cores:4 "fw" in
  let flows = Traffic.Gen.flows (rng 14) 1024 in
  let trace =
    Array.concat
      [
        calm_trace (rng 51) ~flows ~pkts:3072;
        skew_trace (rng 52) ~flows ~pkts:4096;
        calm_trace (rng 53) ~flows ~pkts:3072;
      ]
  in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  (* zero restart budget: the first death writes core 1 off permanently,
     so every later conversion runs over a 3-core live set *)
  (match Faults.parse "crash@1:8" with
  | Error e -> Alcotest.fail e
  | Ok p -> Faults.install p);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let pool =
    Runtime.Pool.create
      ~supervisor:{ Runtime.Supervisor.default_config with max_restarts = 0 }
      ~cores:4 ()
  in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check (list int)) "core 1 written off" [ 1 ] s.Runtime.Pool.failed_cores;
  Alcotest.(check bool) "still switched under skew" true (s.Runtime.Pool.switches >= 1);
  (* after the write-off boundary no packet may land on the dead core *)
  let dead_after =
    match List.sort compare s.Runtime.Pool.last_rebalance_points with
    | [] -> 0
    | p :: _ ->
        let n = ref 0 in
        Array.iteri
          (fun i c -> if i >= p && c = 1 then incr n)
          s.Runtime.Pool.last_assignment;
        !n
  in
  Alcotest.(check int) "no packets on the dead core after remap" 0 dead_after;
  Alcotest.(check bool) "verdicts == sequential over the shrunken pool" true
    (verdicts_equal seq v)

(* --- lock plans: restart pressure reaches serial and climbs back ----------- *)

let test_pool_lock_plan_descends_to_serial () =
  let plan = plan_of ~cores:4 ~strategy:`Force_locks "fw" in
  let flows = Traffic.Gen.flows (rng 15) 1024 in
  let trace = calm_trace (rng 61) ~flows ~pkts:6144 in
  let seq = Runtime.Parallel.run_sequential (Nfs.Registry.find_exn "fw") trace in
  (match Faults.parse "crash@0:4" with
  | Error e -> Alcotest.fail e
  | Ok p -> Faults.install p);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let v = Runtime.Pool.run ~adaptive:pool_mode pool plan trace in
  let s = Runtime.Pool.stats pool in
  let res r = Option.value ~default:0 (List.assoc_opt r s.Runtime.Pool.rung_residency) in
  Alcotest.(check bool) "restart pressure reached serial" true
    (res Maestro.Ladder.Serial >= 1);
  Alcotest.(check bool) "calm epochs climbed back to the lock rung" true
    (List.exists (fun (_, r) -> r = Maestro.Ladder.Lock_based) s.Runtime.Pool.switch_epochs);
  Alcotest.(check int) "never above the plan's rung" 0 (res Maestro.Ladder.Shared_nothing);
  Alcotest.(check bool) "verdicts == sequential" true (verdicts_equal seq v)

let suite =
  [
    Alcotest.test_case "parse/to_string --adaptive" `Quick test_parse;
    Alcotest.test_case "admissible ladder pinned to compile time" `Quick test_ladder;
    Alcotest.test_case "skew steps down, calm streak steps up" `Quick
      test_skew_steps_down_then_streak_up;
    Alcotest.test_case "cooldown suppresses flapping" `Quick test_cooldown_suppresses_flap;
    Alcotest.test_case "deferred switch retries at the next barrier" `Quick
      test_deferred_switch_retries;
    Alcotest.test_case "commit rejects inadmissible rungs" `Quick test_commit_rejects_inadmissible;
    Alcotest.test_case "pool: calm→skew→calm switches and stays sequential" `Slow
      test_pool_switches_with_traffic;
    Alcotest.test_case "pool: calm traffic never switches" `Slow test_pool_calm_never_switches;
    Alcotest.test_case "pool: crash in the switch epoch defers the switch" `Slow
      test_pool_crash_defers_switch;
    Alcotest.test_case "pool: crash after the switch rebuilds the SCR replica" `Slow
      test_pool_crash_after_switch_rebuilds_replica;
    Alcotest.test_case "pool: switching over a written-off core set" `Slow
      test_pool_switch_on_written_off_cores;
    Alcotest.test_case "pool: lock plan descends to serial and climbs back" `Slow
      test_pool_lock_plan_descends_to_serial;
  ]
