let () =
  Alcotest.run "maestro"
    [
      ("bitvec", Test_bitvec.suite);
      ("gf2", Test_gf2.suite);
      ("packet", Test_packet.suite);
      ("codec", Test_codec.suite);
      ("nic", Test_nic.suite);
      ("dsl", Test_dsl.suite);
      ("compile", Test_compile.suite);
      ("state", Test_state.suite);
      ("symbex", Test_symbex.suite);
      ("nfs", Test_nfs.suite);
      ("nfs-edge", Test_nfs_edge.suite);
      ("registry", Test_registry.suite);
      ("chain", Test_chain.suite);
      ("rs3", Test_rs3.suite);
      ("pipeline", Test_pipeline.suite);
      ("codegen", Test_codegen.suite);
      ("runtime", Test_runtime.suite);
      ("rebalance", Test_rebalance.suite);
      ("adaptive", Test_adaptive.suite);
      ("faults", Test_faults.suite);
      ("cluster", Test_cluster.suite);
      ("scr", Test_scr.suite);
      ("traffic", Test_traffic.suite);
      ("sim", Test_sim.suite);
      ("vpp", Test_vpp.suite);
      ("experiments", Test_experiments.suite);
      ("sat", Test_sat.suite);
      ("telemetry", Test_telemetry.suite);
      ("benchdiff", Test_benchdiff.suite);
    ]
