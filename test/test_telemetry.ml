(* The telemetry layer: golden schema stability of the BENCH JSON, counters
   tied to ground truth the rest of the suite already asserts (symbex path
   counts, trace lengths), and the disabled-by-default contract. *)

let contains = Astring_contains.contains

(* Run [f] inside a fresh collection window, hand its result back, and leave
   the global registry clean for whichever test runs next. *)
let with_collection f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let counter_value snap name =
  List.find_map
    (fun c ->
      if String.equal c.Telemetry.counter_name name then Some c.Telemetry.counter_value
      else None)
    snap.Telemetry.counters

let pipeline_snapshot name =
  with_collection (fun () ->
      ignore (Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn name));
      Telemetry.snapshot ())

(* --- counters match known ground truth ------------------------------------ *)

let test_symbex_path_counters () =
  List.iter
    (fun name ->
      (* expected value computed with telemetry off: nothing is recorded *)
      let expected = Symbex.Exec.paths (Symbex.Exec.run (Nfs.Registry.find_exn name)) in
      let snap = pipeline_snapshot name in
      Alcotest.(check (option int))
        (name ^ ": symbex.paths matches Exec.paths")
        (Some expected)
        (counter_value snap "symbex.paths");
      Alcotest.(check (option int)) (name ^ ": one symbex run") (Some 1)
        (counter_value snap "symbex.runs"))
    [ "nop"; "fw" ]

let test_runtime_counters () =
  let snap =
    with_collection (fun () ->
        let nf = Nfs.Registry.find_exn "fw" in
        let plan = (Maestro.Pipeline.parallelize_exn nf).Maestro.Pipeline.plan in
        let rng = Random.State.make [| 7 |] in
        let flows = Traffic.Gen.flows rng 100 in
        let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts = 1_000 } in
        let trace = Traffic.Gen.uniform ~spec rng ~flows in
        ignore (Runtime.Parallel.run plan trace);
        (Telemetry.snapshot (), Array.length trace))
  in
  let snap, n = snap in
  Alcotest.(check (option int)) "runtime.pkts = trace length" (Some n)
    (counter_value snap "runtime.pkts");
  let hist =
    List.find (fun h -> h.Telemetry.hist_name = "runtime.per_core_pkts") snap.Telemetry.histograms
  in
  Alcotest.(check int) "one histogram observation per core" 16 hist.Telemetry.hist_count;
  Alcotest.(check (float 0.001)) "per-core counts sum to the trace" (float_of_int n)
    hist.Telemetry.hist_sum

(* --- JSON schema stability -------------------------------------------------- *)

let test_json_deterministic () =
  List.iter
    (fun name ->
      let json () = Telemetry.to_json ~name ~elide_times:true (pipeline_snapshot name) in
      let a = json () and b = json () in
      Alcotest.(check string) (name ^ ": identical runs render identically") a b)
    [ "nop"; "fw" ]

let test_json_schema () =
  let json = Telemetry.to_json ~name:"fw" ~elide_times:true (pipeline_snapshot "fw") in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json contains %S" needle) true (contains json needle))
    [
      "\"schema\": \"maestro-telemetry/1\"";
      "\"name\": \"fw\"";
      "\"spans\": [";
      "\"counters\": [";
      "\"histograms\": [";
      "{\"path\": \"pipeline/symbex\", \"count\": 1, \"total_ms\": 0.0, \"max_ms\": 0.0}";
      "{\"path\": \"pipeline/solving/rs3/solve\"";
      "{\"name\": \"rs3.attempts\", \"value\": 1}";
      "{\"name\": \"sharding.constraints\", \"value\": 3}";
    ];
  (* elided times really are elided *)
  Alcotest.(check bool) "no wall-clock leakage" false (contains json "\"total_ms\": 0.00000")

(* --- disabled contract ------------------------------------------------------- *)

let test_disabled_records_nothing () =
  Telemetry.reset ();
  Alcotest.(check bool) "telemetry starts disabled" false (Telemetry.enabled ());
  ignore (Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn "fw"));
  let snap = Telemetry.snapshot () in
  Alcotest.(check int) "no spans" 0 (List.length snap.Telemetry.spans);
  Alcotest.(check int) "no counters" 0 (List.length snap.Telemetry.counters);
  Alcotest.(check int) "no histograms" 0 (List.length snap.Telemetry.histograms)

(* --- span semantics ----------------------------------------------------------- *)

let test_span_passthrough_and_unwind () =
  with_collection (fun () ->
      Alcotest.(check int) "with_span passes the result through" 42
        (Telemetry.Span.with_span "v" (fun () -> 42));
      (try Telemetry.Span.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
      Telemetry.Span.with_span "after" (fun () -> ());
      let snap = Telemetry.snapshot () in
      let paths = List.map (fun s -> s.Telemetry.span_path) snap.Telemetry.spans in
      (* "after" at the toplevel proves the stack unwound past the raise *)
      Alcotest.(check (list string)) "paths recorded and unwound" [ "after"; "boom"; "v" ] paths)

let test_summary_renders () =
  let snap = pipeline_snapshot "fw" in
  let text = Format.asprintf "%a" Telemetry.pp_summary snap in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "summary mentions %S" needle) true
        (contains text needle))
    [ "pipeline/symbex"; "symbex.paths"; "toeplitz.hashes"; "spans (wall clock)" ]

let suite =
  [
    Alcotest.test_case "symbex path counters" `Quick test_symbex_path_counters;
    Alcotest.test_case "runtime counters" `Quick test_runtime_counters;
    Alcotest.test_case "json deterministic" `Quick test_json_deterministic;
    Alcotest.test_case "json schema" `Quick test_json_schema;
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "span passthrough + unwind" `Quick test_span_passthrough_and_unwind;
    Alcotest.test_case "summary renders" `Quick test_summary_renders;
  ]
