(* State-compute replication: the digest/replay machinery must be
   observationally invisible.  Differential tests drive SCR execution —
   manual lockstep, the deterministic {!Runtime.Parallel} model and the
   real domain pool (including under an injected fault plan) — against
   the sequential interpreter oracle, checking verdicts, op-event
   streams AND final replica state on the NF's write set.  A qcheck
   property pins the core algebra: digest-apply ∘ digest-derive is the
   identity on the write set for every shipped NF. *)

let ops_pp fmt (e : Dsl.Interp.op_event) =
  Format.fprintf fmt "%s(%b,%d)" e.Dsl.Interp.obj e.Dsl.Interp.write e.Dsl.Interp.expired

let hostile_trace ~seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun i ->
      Packet.Pkt.make
        ~port:(Random.State.int rng 2)
        ~ip_src:(Random.State.int rng 8)
        ~ip_dst:(Random.State.int rng 8)
        ~src_port:(Random.State.int rng 4)
        ~dst_port:(Random.State.int rng 4)
        ~ts_ns:(i * Random.State.int rng 5_000_000)
        ())

let verdicts_equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let writers () =
  List.filter
    (fun (nf : Dsl.Ast.t) -> Result.is_ok (Maestro.Scrspec.admissible nf))
    (List.map Nfs.Registry.find_exn Nfs.Registry.extended_names @ Nfs.Scenarios.all ())

(* --- manual lockstep: verdicts, op events, final replicas -------------------- *)

(* Run the trace through the oracle and through [cores] SCR replicas in
   lockstep: packet [i]'s owner is [i mod cores] and runs the full NF;
   everyone else replays the packet's digest.  The owner's verdict and
   op-event stream must match the oracle packet by packet, and every
   replica must end structurally equal to the oracle on the write set. *)
let scr_differential label (nf : Dsl.Ast.t) ~cores trace =
  let info = Dsl.Check.check_exn nf in
  let oracle = Dsl.Instance.create nf in
  let spec =
    match Maestro.Scrspec.admissible nf with
    | Ok s -> s
    | Error e -> Alcotest.failf "%s: expected admissible: %s" label e
  in
  let prog = Runtime.Scr.prepare spec in
  let insts = Array.init cores (fun _ -> Dsl.Instance.create nf) in
  let staged = Dsl.Compile.stage_runner nf info in
  let runners = Array.map (Dsl.Compile.bind_runner staged) insts in
  let reps = Array.map (Runtime.Scr.bind prog) insts in
  let buf = Array.make (max 1 (Runtime.Scr.ints_per_pkt prog)) 0 in
  Array.iteri
    (fun i pkt ->
      let owner = i mod cores in
      let o_ops = ref [] and s_ops = ref [] in
      let a1 = Dsl.Interp.process ~on_op:(fun e -> o_ops := e :: !o_ops) nf info oracle pkt in
      let a2 = Dsl.Compile.run ~on_op:(fun e -> s_ops := e :: !s_ops) runners.(owner) pkt in
      Runtime.Scr.encode prog pkt buf 0;
      Array.iteri (fun c r -> if c <> owner then Runtime.Scr.apply r buf 0) reps;
      if a1 <> a2 then
        Alcotest.failf "%s: verdict diverges at packet %d (%a)" label i Packet.Pkt.pp pkt;
      if !o_ops <> !s_ops then
        Alcotest.failf "%s: op stream diverges at packet %d: oracle [%a] scr [%a]" label i
          (Format.pp_print_list ops_pp)
          (List.rev !o_ops)
          (Format.pp_print_list ops_pp)
          (List.rev !s_ops))
    trace;
  Array.iteri
    (fun c inst ->
      if not (Runtime.Scr.replica_equal spec oracle inst) then
        Alcotest.failf "%s: replica %d diverged from the oracle on the write set" label c)
    insts

let test_lockstep_all_writers () =
  List.iter
    (fun (nf : Dsl.Ast.t) ->
      scr_differential nf.Dsl.Ast.name nf ~cores:4 (hostile_trace ~seed:13 2_000))
    (writers ())

(* --- qcheck: digest-apply ∘ digest-derive = identity on the write set ------- *)

let replay_is_identity (nf : Dsl.Ast.t) trace =
  let info = Dsl.Check.check_exn nf in
  let full = Dsl.Instance.create nf in
  let runner = Dsl.Compile.make_runner nf info full in
  (* [derive], not [admissible]: the identity must hold for every writer,
     budget or no budget *)
  let spec = Maestro.Scrspec.derive nf in
  let prog = Runtime.Scr.prepare spec in
  let replica = Dsl.Instance.create nf in
  let rep = Runtime.Scr.bind prog replica in
  let buf = Array.make (max 1 (Runtime.Scr.ints_per_pkt prog)) 0 in
  Array.iter
    (fun pkt ->
      ignore (Dsl.Compile.run runner pkt);
      Runtime.Scr.encode prog pkt buf 0;
      Runtime.Scr.apply rep buf 0)
    trace;
  Runtime.Scr.replica_equal spec full replica

let prop_digest_identity =
  QCheck.Test.make ~name:"digest replay is the identity on the write set" ~count:30
    QCheck.(pair small_nat (int_range 50 400))
    (fun (seed, n) ->
      let trace = hostile_trace ~seed n in
      List.for_all
        (fun (nf : Dsl.Ast.t) -> replay_is_identity nf trace)
        (List.map Nfs.Registry.find_exn Nfs.Registry.extended_names @ Nfs.Scenarios.all ()))

(* --- crash mid-stream: rebuild from the retained digest log ------------------ *)

let test_rebuild_from_digest_log () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = hostile_trace ~seed:21 1_500 in
  let spec =
    match Maestro.Scrspec.admissible nf with Ok s -> s | Error e -> Alcotest.fail e
  in
  let prog = Runtime.Scr.prepare spec in
  let stride = Runtime.Scr.ints_per_pkt prog in
  let log = Runtime.Scr.encode_batch prog trace ~lo:0 ~len:(Array.length trace) in
  let reference = Dsl.Instance.create nf in
  let ref_rep = Runtime.Scr.bind prog reference in
  Runtime.Scr.apply_batch ref_rep log ~npkts:(Array.length trace);
  (* the victim applies half the stream, "crashes", is reset to initial
     state and REBOUND (reset replaces the containers; stale bindings
     would write into the orphaned state), then rebuilds from the
     retained log before replaying the rest — the pool's crash hook *)
  let victim = Dsl.Instance.create nf in
  let vic_rep = ref (Runtime.Scr.bind prog victim) in
  let half = Array.length trace / 2 in
  for i = 0 to half - 1 do
    Runtime.Scr.apply !vic_rep log (i * stride)
  done;
  Dsl.Instance.reset victim nf;
  vic_rep := Runtime.Scr.bind prog victim;
  for i = 0 to half - 1 do
    Runtime.Scr.apply !vic_rep log (i * stride)
  done;
  for i = half to Array.length trace - 1 do
    Runtime.Scr.apply !vic_rep log (i * stride)
  done;
  Alcotest.(check bool) "rebuilt replica matches the reference" true
    (Runtime.Scr.replica_equal spec reference victim)

(* --- the deterministic model and the ladder ---------------------------------- *)

let scr_plan ?(cores = 4) name =
  let request = { Maestro.Pipeline.default_request with cores; strategy = `Force_scr } in
  Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)

let test_parallel_model_matches_oracle () =
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      let trace = hostile_trace ~seed:17 2_500 in
      let o = scr_plan name in
      Alcotest.(check string)
        (name ^ " strategy") "state-compute-replication"
        (Maestro.Plan.strategy_name o.Maestro.Pipeline.plan.Maestro.Plan.strategy);
      let seq = Runtime.Parallel.run_sequential nf trace in
      let par = Runtime.Parallel.run o.Maestro.Pipeline.plan trace in
      Alcotest.(check bool)
        (name ^ " verdicts == sequential")
        true
        (verdicts_equal seq par.Runtime.Parallel.verdicts);
      (* round-robin spray: shares balanced by construction *)
      Alcotest.(check bool)
        (name ^ " balanced")
        true
        (Runtime.Parallel.imbalance par.Runtime.Parallel.stats < 1.01))
    [ "fw"; "dbridge"; "lb" ]

let test_auto_takes_scr_rung_for_blocked_nfs () =
  let o = Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn "dbridge") in
  Alcotest.(check string) "dbridge rung" "state-compute-replication"
    (Maestro.Ladder.rung_name o.Maestro.Pipeline.ladder.Maestro.Ladder.chosen);
  let step =
    List.find
      (fun (s : Maestro.Ladder.step) -> s.Maestro.Ladder.rung = Maestro.Ladder.Scr)
      o.Maestro.Pipeline.ladder.Maestro.Ladder.steps
  in
  Alcotest.(check bool) "scr step taken" true step.Maestro.Ladder.taken;
  Alcotest.(check bool) "reason quotes the digest cost" true
    (let r = step.Maestro.Ladder.reason in
     let has sub =
       let n = String.length sub and m = String.length r in
       let rec go i = i + n <= m && (String.sub r i n = sub || go (i + 1)) in
       go 0
     in
     has "digest");
  (* read-only state: SCR buys nothing, the rung must refuse *)
  match Maestro.Scrspec.admissible (Nfs.Registry.find_exn "sbridge") with
  | Ok _ -> Alcotest.fail "sbridge must not be SCR-admissible"
  | Error _ -> ()

(* --- the real domain pool ----------------------------------------------------- *)

let test_pool_scr_differential () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = hostile_trace ~seed:29 4_000 in
  let o = scr_plan "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let verdicts = Runtime.Pool.run pool o.Maestro.Pipeline.plan trace in
  Alcotest.(check bool) "pool scr verdicts == sequential" true (verdicts_equal seq verdicts);
  let s = Runtime.Pool.stats pool in
  (* 125 batches broadcast to 3 non-owners each *)
  Alcotest.(check int) "replays scheduled" (125 * 3) s.Runtime.Pool.scr_replays;
  Alcotest.(check bool) "digest bytes accounted" true (s.Runtime.Pool.scr_digest_bytes > 0);
  Alcotest.(check int) "no rebuilds without faults" 0 s.Runtime.Pool.scr_rebuilds;
  Alcotest.(check int) "nothing dropped" 0 s.Runtime.Pool.dropped_batches

(* Crash mid-epoch under an injected fault plan: the respawned worker
   must rebuild its replica from the digest stream before rejoining, and
   verdicts must still equal the sequential oracle. *)
let test_pool_scr_fault_plan () =
  (match Faults.parse "crash@1:2; crash@2:5" with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = hostile_trace ~seed:31 4_000 in
  let o = scr_plan "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let verdicts = Runtime.Pool.run pool o.Maestro.Pipeline.plan trace in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check bool) "at least one restart" true (s.Runtime.Pool.restarts >= 1);
  Alcotest.(check bool) "replicas rebuilt from the digest stream" true
    (s.Runtime.Pool.scr_rebuilds >= 1);
  Alcotest.(check bool) "pool scr verdicts == sequential under faults" true
    (verdicts_equal seq verdicts)

let suite =
  [
    Alcotest.test_case "lockstep differential (all writers)" `Quick test_lockstep_all_writers;
    QCheck_alcotest.to_alcotest prop_digest_identity;
    Alcotest.test_case "crash rebuild from digest log" `Quick test_rebuild_from_digest_log;
    Alcotest.test_case "parallel model matches oracle" `Quick
      test_parallel_model_matches_oracle;
    Alcotest.test_case "auto takes the scr rung for blocked NFs" `Quick
      test_auto_takes_scr_rung_for_blocked_nfs;
    Alcotest.test_case "pool scr differential" `Quick test_pool_scr_differential;
    Alcotest.test_case "pool scr under fault plan" `Quick test_pool_scr_fault_plan;
  ]
