(* Differential testing of the staged compiler against the interpreter —
   the compiled closure must be observationally identical: same verdicts
   AND same op-event streams, packet by packet, on every shipped NF, on
   the Fig. 2 micro-NFs, against the VPP NAT44 graph, and with the
   supervised pool under an injected fault plan. *)

let ops_pp fmt (e : Dsl.Interp.op_event) =
  Format.fprintf fmt "%s(%b,%d)" e.Dsl.Interp.obj e.Dsl.Interp.write e.Dsl.Interp.expired

(* Run [trace] through a fresh interpreter instance and a fresh compiled
   instance in lockstep; fail on the first divergence. *)
let differential label nf trace =
  let info = Dsl.Check.check_exn nf in
  let i_inst = Dsl.Instance.create nf in
  let c_inst = Dsl.Instance.create nf in
  let bound = Dsl.Compile.bind (Dsl.Compile.stage nf info) c_inst in
  Array.iteri
    (fun i pkt ->
      let i_ops = ref [] and c_ops = ref [] in
      let a1 = Dsl.Interp.process ~on_op:(fun e -> i_ops := e :: !i_ops) nf info i_inst pkt in
      let a2 = Dsl.Compile.process ~on_op:(fun e -> c_ops := e :: !c_ops) bound pkt in
      if a1 <> a2 then
        Alcotest.failf "%s: verdict diverges at packet %d (%a)" label i Packet.Pkt.pp pkt;
      if !i_ops <> !c_ops then
        Alcotest.failf "%s: op stream diverges at packet %d: interp [%a] compiled [%a]" label
          i
          (Format.pp_print_list ops_pp)
          (List.rev !i_ops)
          (Format.pp_print_list ops_pp)
          (List.rev !c_ops))
    trace

(* An adversarial trace: a tiny address space forces key collisions,
   capacity-full puts, expiry storms and both traffic directions. *)
let hostile_trace ~seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun i ->
      Packet.Pkt.make
        ~port:(Random.State.int rng 2)
        ~ip_src:(Random.State.int rng 8)
        ~ip_dst:(Random.State.int rng 8)
        ~src_port:(Random.State.int rng 4)
        ~dst_port:(Random.State.int rng 4)
        ~ts_ns:(i * Random.State.int rng 5_000_000)
        ())

let test_registry_nfs () =
  List.iter
    (fun name ->
      let w = Sim.Workload.read_heavy ~pkts:3_000 ~flows:300 name in
      differential (name ^ "/read-heavy") w.Sim.Workload.nf w.Sim.Workload.trace;
      differential (name ^ "/hostile") (Nfs.Registry.find_exn name) (hostile_trace ~seed:7 2_000))
    Nfs.Registry.extended_names

let test_fig2_scenarios () =
  List.iter
    (fun (nf : Dsl.Ast.t) ->
      differential nf.Dsl.Ast.name nf (hostile_trace ~seed:11 2_000))
    (Nfs.Scenarios.all ())

(* The compiled maestro NAT must agree with the hand-written VPP NAT44
   graph exactly as the interpreter does (mirrors
   test_vpp.test_nat44_agrees_with_maestro_nat, compiled side). *)
let test_vpp_nat44_agrees_with_compiled () =
  let w = Sim.Workload.read_heavy ~pkts:4_000 ~flows:500 "nat" in
  let vpp = Vpp.Nat44.create () in
  let vpp_verdicts = Vpp.Nat44.run vpp w.Sim.Workload.trace in
  let info = Dsl.Check.check_exn w.Sim.Workload.nf in
  let runner =
    Dsl.Compile.make_runner ~compiled:true w.Sim.Workload.nf info
      (Dsl.Instance.create w.Sim.Workload.nf)
  in
  let compiled = Array.map (Dsl.Compile.run runner) w.Sim.Workload.trace in
  Array.iteri
    (fun i v ->
      let same =
        match (v, compiled.(i)) with
        | Vpp.Graph.Sent (pa, _), Dsl.Interp.Fwd (pb, _) -> pa = pb
        | Vpp.Graph.Dropped, Dsl.Interp.Dropped -> true
        | _ -> false
      in
      Alcotest.(check bool) (Printf.sprintf "verdict %d" i) true same)
    vpp_verdicts

(* Crash/replay semantics from PR 3 hold with the compiled path: under a
   seeded fault plan the supervised pool (workers on compiled closures)
   still reproduces the sequential interpreter verdict for every packet. *)
let test_pool_fault_plan_differential () =
  (match Faults.parse "crash@1:2; crash@2:5" with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let w = Sim.Workload.read_heavy ~pkts:4_000 ~flows:400 "fw" in
  let nf = w.Sim.Workload.nf in
  let request = { Maestro.Pipeline.default_request with cores = 4; seed = 3 } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request nf).Maestro.Pipeline.plan in
  let seq = Runtime.Parallel.run_sequential nf w.Sim.Workload.trace in
  Dsl.Compile.set_default true;
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let verdicts = Runtime.Pool.run pool plan w.Sim.Workload.trace in
  let stats = Runtime.Pool.stats pool in
  Alcotest.(check bool) "at least one restart" true (stats.Runtime.Pool.restarts >= 1);
  Array.iteri
    (fun i v ->
      if v <> seq.(i) then Alcotest.failf "pool verdict %d diverges from sequential" i)
    verdicts

(* The interp runner honours the dispatch switch: with [?compiled:false]
   (or the global default off) the runner is the interpreter itself. *)
let test_runner_dispatch () =
  let nf = Nfs.Registry.find_exn "fw" in
  let info = Dsl.Check.check_exn nf in
  let mk c = Dsl.Compile.make_runner ?compiled:c nf info (Dsl.Instance.create nf) in
  Alcotest.(check bool) "explicit on" true (Dsl.Compile.is_compiled (mk (Some true)));
  Alcotest.(check bool) "explicit off" false (Dsl.Compile.is_compiled (mk (Some false)));
  let before = Dsl.Compile.default_enabled () in
  Fun.protect ~finally:(fun () -> Dsl.Compile.set_default before) @@ fun () ->
  Dsl.Compile.set_default false;
  Alcotest.(check bool) "default off" false (Dsl.Compile.is_compiled (mk None));
  Dsl.Compile.set_default true;
  Alcotest.(check bool) "default on" true (Dsl.Compile.is_compiled (mk None))

(* Re-binding one staged program over independent instances keeps their
   state disjoint (the pool binds a fresh instance per core). *)
let test_bind_isolates_state () =
  let nf = Nfs.Registry.find_exn "fw" in
  let info = Dsl.Check.check_exn nf in
  let staged = Dsl.Compile.stage nf info in
  let b1 = Dsl.Compile.bind staged (Dsl.Instance.create nf) in
  let b2 = Dsl.Compile.bind staged (Dsl.Instance.create nf) in
  let lan_pkt =
    Packet.Pkt.make ~port:0 ~ip_src:10 ~ip_dst:20 ~src_port:1 ~dst_port:2 ()
  in
  let wan_reply =
    Packet.Pkt.make ~port:1 ~ip_src:20 ~ip_dst:10 ~src_port:2 ~dst_port:1 ()
  in
  (* open the session only on b1 *)
  (match Dsl.Compile.process b1 lan_pkt with
  | Dsl.Interp.Fwd _ -> ()
  | Dsl.Interp.Dropped -> Alcotest.fail "outbound dropped");
  (match Dsl.Compile.process b1 wan_reply with
  | Dsl.Interp.Fwd _ -> ()
  | Dsl.Interp.Dropped -> Alcotest.fail "reply should be admitted on b1");
  match Dsl.Compile.process b2 wan_reply with
  | Dsl.Interp.Dropped -> ()
  | Dsl.Interp.Fwd _ -> Alcotest.fail "b2 must not see b1's session"

(* qcheck: random seeds, random NF from the corpus, strict equivalence *)
let prop_differential =
  QCheck.Test.make ~name:"compiled ≡ interpreter on random hostile traces" ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 9))
    (fun (seed, nf_idx) ->
      let name = List.nth Nfs.Registry.extended_names
          (nf_idx mod List.length Nfs.Registry.extended_names) in
      differential (name ^ "/qcheck") (Nfs.Registry.find_exn name)
        (hostile_trace ~seed 500);
      true)

let suite =
  [
    Alcotest.test_case "registry NFs: verdicts + op streams" `Slow test_registry_nfs;
    Alcotest.test_case "fig2 micro-NFs" `Quick test_fig2_scenarios;
    Alcotest.test_case "vpp nat44 agrees with compiled nat" `Quick
      test_vpp_nat44_agrees_with_compiled;
    Alcotest.test_case "pool under fault plan matches oracle" `Quick
      test_pool_fault_plan_differential;
    Alcotest.test_case "runner dispatch switch" `Quick test_runner_dispatch;
    Alcotest.test_case "bind isolates per-core state" `Quick test_bind_isolates_state;
    QCheck_alcotest.to_alcotest prop_differential;
  ]
