(* Unit and property tests for the Bitvec substrate. *)

let bv = Alcotest.testable Bitvec.pp Bitvec.equal

let test_of_hex () =
  let v = Bitvec.of_hex "6d5a56da" in
  Alcotest.(check int) "length" 32 (Bitvec.length v);
  Alcotest.(check string) "roundtrip" "6d5a56da" (Bitvec.to_hex v);
  (* 0x6d = 0110 1101: bit 0 is the MSB *)
  Alcotest.(check bool) "bit0" false (Bitvec.get v 0);
  Alcotest.(check bool) "bit1" true (Bitvec.get v 1);
  Alcotest.(check bool) "bit7" true (Bitvec.get v 7)

let test_of_hex_separators () =
  Alcotest.check bv "colons" (Bitvec.of_hex "deadbeef") (Bitvec.of_hex "de:ad be\nef")

let test_of_hex_invalid () =
  Alcotest.check_raises "odd" (Invalid_argument "Bitvec.of_hex: odd digit count") (fun () ->
      ignore (Bitvec.of_hex "abc"));
  Alcotest.check_raises "char" (Invalid_argument "Bitvec.of_hex: invalid character")
    (fun () -> ignore (Bitvec.of_hex "zz"))

let test_of_int () =
  let v = Bitvec.of_int ~width:16 0x8001 in
  Alcotest.(check bool) "msb" true (Bitvec.get v 0);
  Alcotest.(check bool) "mid" false (Bitvec.get v 8);
  Alcotest.(check bool) "lsb" true (Bitvec.get v 15);
  Alcotest.(check int) "roundtrip" 0x8001 (Bitvec.to_int v)

let test_int32 () =
  let v = Bitvec.of_int32 0xdeadbeefl in
  Alcotest.(check int32) "roundtrip" 0xdeadbeefl (Bitvec.to_int32 v);
  Alcotest.(check string) "hex" "deadbeef" (Bitvec.to_hex v)

let test_set_get () =
  let v = Bitvec.create 10 in
  let v = Bitvec.set v 9 true in
  Alcotest.(check bool) "set" true (Bitvec.get v 9);
  Alcotest.(check int) "popcount" 1 (Bitvec.popcount v);
  let v = Bitvec.set v 9 false in
  Alcotest.(check bool) "cleared" true (Bitvec.is_zero v)

let test_sub_append () =
  let v = Bitvec.of_hex "abcd" in
  let hi = Bitvec.sub v ~pos:0 ~len:8 and lo = Bitvec.sub v ~pos:8 ~len:8 in
  Alcotest.(check string) "hi" "ab" (Bitvec.to_hex hi);
  Alcotest.(check string) "lo" "cd" (Bitvec.to_hex lo);
  Alcotest.check bv "append" v (Bitvec.append hi lo);
  Alcotest.check bv "concat" v (Bitvec.concat [ hi; lo ])

let test_unaligned () =
  (* a 12-bit vector: unused low bits of last byte must not affect equality *)
  let a = Bitvec.of_bytes ~bits:12 (Bytes.of_string "\xab\xcf") in
  let b = Bitvec.of_bytes ~bits:12 (Bytes.of_string "\xab\xc0") in
  Alcotest.check bv "normalized" a b;
  Alcotest.(check int) "length" 12 (Bitvec.length a)

let test_logic () =
  let a = Bitvec.of_hex "f0f0" and b = Bitvec.of_hex "ff00" in
  Alcotest.(check string) "xor" "0ff0" (Bitvec.to_hex (Bitvec.xor a b));
  Alcotest.(check string) "and" "f000" (Bitvec.to_hex (Bitvec.and_ a b));
  Alcotest.(check string) "or" "fff0" (Bitvec.to_hex (Bitvec.or_ a b));
  Alcotest.(check string) "not" "0f0f" (Bitvec.to_hex (Bitvec.not_ a))

let test_rotate () =
  let v = Bitvec.of_hex "8000" in
  Alcotest.(check string) "rotl1" "0001" (Bitvec.to_hex (Bitvec.rotate_left v 1));
  Alcotest.(check string) "rotl16" "8000" (Bitvec.to_hex (Bitvec.rotate_left v 16));
  Alcotest.(check string) "rotl-neg" "4000" (Bitvec.to_hex (Bitvec.rotate_left v (-1)))

let test_to_bin () =
  Alcotest.(check string) "bin" "10100101" (Bitvec.to_bin (Bitvec.of_hex "a5"))

let test_byte_accessors_aligned () =
  let v = Bitvec.of_hex "6d5a56da" in
  Alcotest.(check int) "bytes_length" 4 (Bitvec.bytes_length v);
  Alcotest.(check int) "byte 0" 0x6d (Bitvec.byte v 0);
  Alcotest.(check int) "byte 3" 0xda (Bitvec.byte v 3);
  (* byte i agrees with the bit-level view *)
  for i = 0 to 3 do
    let from_bits = ref 0 in
    for j = 0 to 7 do
      from_bits := (!from_bits lsl 1) lor (if Bitvec.get v ((8 * i) + j) then 1 else 0)
    done;
    Alcotest.(check int) (Printf.sprintf "byte %d == bits" i) !from_bits (Bitvec.byte v i)
  done

let test_byte_accessors_ragged () =
  (* 12-bit vector: the second byte exists but its low 4 bits are zero *)
  let v = Bitvec.of_bytes ~bits:12 (Bytes.of_string "\xab\xcf") in
  Alcotest.(check int) "bytes_length" 2 (Bitvec.bytes_length v);
  Alcotest.(check int) "byte 0" 0xab (Bitvec.byte v 0);
  Alcotest.(check int) "last byte normalized" 0xc0 (Bitvec.byte v 1);
  let empty = Bitvec.create 0 in
  Alcotest.(check int) "empty has no bytes" 0 (Bitvec.bytes_length empty);
  Alcotest.check_raises "out of range" (Invalid_argument "Bitvec.byte: byte index out of range")
    (fun () -> ignore (Bitvec.byte v 2));
  Alcotest.check_raises "negative" (Invalid_argument "Bitvec.byte: byte index out of range")
    (fun () -> ignore (Bitvec.byte v (-1)))

let test_bool_list () =
  let l = [ true; false; true ] in
  Alcotest.(check (list bool)) "roundtrip" l (Bitvec.to_bool_list (Bitvec.of_bool_list l))

(* --- properties --------------------------------------------------------- *)

let gen_bv =
  QCheck.Gen.(
    int_range 0 70 >>= fun n ->
    list_repeat n bool >|= Bitvec.of_bool_list)

let arb_bv = QCheck.make ~print:Bitvec.to_hex gen_bv

let prop_xor_involution =
  QCheck.Test.make ~name:"xor is an involution" ~count:200
    (QCheck.pair arb_bv arb_bv) (fun (a, b) ->
      let b = Bitvec.init (Bitvec.length a) (fun i -> i < Bitvec.length b && Bitvec.get b i) in
      Bitvec.equal a Bitvec.(xor (xor a b) b))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip on byte-aligned vectors" ~count:200 arb_bv
    (fun v ->
      let aligned = Bitvec.append v (Bitvec.create ((8 - (Bitvec.length v mod 8)) mod 8)) in
      Bitvec.equal aligned (Bitvec.of_hex (Bitvec.to_hex aligned)))

let prop_popcount_xor =
  QCheck.Test.make ~name:"popcount(a xor a) = 0" ~count:200 arb_bv (fun a ->
      Bitvec.popcount (Bitvec.xor a a) = 0)

let prop_sub_concat =
  QCheck.Test.make ~name:"splitting then concatenating is the identity" ~count:200
    (QCheck.pair arb_bv QCheck.small_nat) (fun (v, k) ->
      let n = Bitvec.length v in
      let k = if n = 0 then 0 else k mod (n + 1) in
      let a = Bitvec.sub v ~pos:0 ~len:k and b = Bitvec.sub v ~pos:k ~len:(n - k) in
      Bitvec.equal v (Bitvec.append a b))

let prop_rotate_full_circle =
  QCheck.Test.make ~name:"rotating by the width is the identity" ~count:200 arb_bv
    (fun v -> Bitvec.length v = 0 || Bitvec.equal v (Bitvec.rotate_left v (Bitvec.length v)))

let suite =
  [
    Alcotest.test_case "of_hex" `Quick test_of_hex;
    Alcotest.test_case "of_hex separators" `Quick test_of_hex_separators;
    Alcotest.test_case "of_hex invalid" `Quick test_of_hex_invalid;
    Alcotest.test_case "of_int" `Quick test_of_int;
    Alcotest.test_case "int32 roundtrip" `Quick test_int32;
    Alcotest.test_case "set/get" `Quick test_set_get;
    Alcotest.test_case "sub/append" `Quick test_sub_append;
    Alcotest.test_case "unaligned widths" `Quick test_unaligned;
    Alcotest.test_case "bitwise logic" `Quick test_logic;
    Alcotest.test_case "rotate" `Quick test_rotate;
    Alcotest.test_case "to_bin" `Quick test_to_bin;
    Alcotest.test_case "byte accessors (aligned)" `Quick test_byte_accessors_aligned;
    Alcotest.test_case "byte accessors (ragged)" `Quick test_byte_accessors_ragged;
    Alcotest.test_case "bool list" `Quick test_bool_list;
    QCheck_alcotest.to_alcotest prop_xor_involution;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_popcount_xor;
    QCheck_alcotest.to_alcotest prop_sub_concat;
    QCheck_alcotest.to_alcotest prop_rotate_full_circle;
  ]
