(* The fault-tolerance acceptance suite: seeded fault plans drive every
   recovery path — supervisor restart, permanent failure with
   indirection-table remap, backpressure under full rings and dead
   consumers, and the solver-budget degradation ladder — and each test
   asserts both the recovery telemetry and, where the path is lossless,
   exact sequential equivalence. *)

let rng seed = Random.State.make [| seed |]

let plan_of ?(cores = 4) name =
  let request = { Maestro.Pipeline.default_request with cores } in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let mixed_trace seed npkts nflows =
  let st = rng seed in
  let flows = Traffic.Gen.flows st nflows in
  Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = npkts } st ~flows

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let counter_value snap name =
  List.find_map
    (fun c ->
      if String.equal c.Telemetry.counter_name name then Some c.Telemetry.counter_value
      else None)
    snap.Telemetry.counters
  |> Option.value ~default:0

let with_fault_plan spec f =
  (match Faults.parse spec with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Faults.clear f

let with_pool ?ring_capacity ?batch_size ?backpressure ?supervisor ~cores f =
  let pool = Runtime.Pool.create ?ring_capacity ?batch_size ?backpressure ?supervisor ~cores () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) (fun () -> f pool)

let no_restart_supervisor = { Runtime.Supervisor.default_config with max_restarts = 0 }

(* --- plan parsing ----------------------------------------------------------- *)

let test_parse_plans () =
  (match Faults.parse "crash@1:3x2; slow@2:0:500 ;stall@0:4:1000;satbudget@10:1000" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "events" 4 (List.length p.Faults.events);
      Alcotest.(check bool) "crash parsed" true
        (List.mem (Faults.Worker_crash { core = 1; batch = 3; times = 2 }) p.Faults.events);
      Alcotest.(check bool) "slow parsed" true
        (List.mem (Faults.Slow_worker { core = 2; from_batch = 0; spins = 500 }) p.Faults.events);
      Alcotest.(check bool) "stall parsed" true
        (List.mem (Faults.Ring_stall { core = 0; batch = 4; spins = 1000 }) p.Faults.events);
      Alcotest.(check bool) "satbudget parsed" true
        (List.mem (Faults.Solver_budget { conflicts = 10; propagations = 1000 }) p.Faults.events));
  (* default crash multiplicity *)
  (match Faults.parse "crash@0:0" with
  | Ok { Faults.events = [ Faults.Worker_crash { times; _ } ]; _ } ->
      Alcotest.(check int) "times defaults to 1" 1 times
  | _ -> Alcotest.fail "single crash event expected");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Faults.parse bad)))
    [ ""; "boom@1:2"; "crash@x:1"; "crash@1"; "slow@1:2"; "satbudget@1:2:3"; "crash"; "phase@1:"; "phase@x:calm" ]

let test_phase_schedule () =
  (* phase events are descriptive: parsed, sorted, read back — no hook *)
  (match Faults.parse "phase@4:skew;crash@2:60;phase@0:calm;phase@8:calm" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Faults.install p;
      Fun.protect ~finally:Faults.clear @@ fun () ->
      Alcotest.(check (list (pair int string)))
        "schedule ascending by epoch"
        [ (0, "calm"); (4, "skew"); (8, "calm") ]
        (Faults.phases ()));
  Alcotest.(check (list (pair int string))) "no plan, no phases" [] (Faults.phases ());
  (* round-trips through the printer *)
  let ev = Faults.Phase_shift { epoch = 4; profile = "skew" } in
  Alcotest.(check string) "printer" "phase@4:skew" (Format.asprintf "%a" Faults.pp_event ev)

let test_disabled_hooks_are_noops () =
  Faults.clear ();
  Alcotest.(check bool) "inactive" false (Faults.active ());
  Alcotest.(check bool) "nothing installed" true (Faults.installed () = None);
  (* must not raise or spin *)
  Faults.worker_batch ~core:0 ~batch:0;
  Alcotest.(check bool) "no solver override" true (Faults.solver_budget () = None)

(* --- crash -> supervisor restart -------------------------------------------- *)

let test_crash_restart_preserves_equivalence () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 71 1500 150 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:4 "fw" in
  with_fault_plan "crash@1:2" @@ fun () ->
  Telemetry.reset ();
  Telemetry.enable ();
  with_pool ~cores:4 @@ fun pool ->
  let v = Runtime.Pool.run pool plan trace in
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  (* the crashed batch was replayed inline before the respawn, so the
     per-core packet order — and therefore every verdict — is intact *)
  Alcotest.(check bool) "verdicts == sequential across the crash" true (verdicts_equal seq v);
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "one restart" 1 s.Runtime.Pool.restarts;
  Alcotest.(check (list int)) "no permanent failure" [] s.Runtime.Pool.failed_cores;
  Alcotest.(check bool) "crashed batch ran inline" true (s.Runtime.Pool.inline_batches >= 1);
  Alcotest.(check bool) "restart event recorded" true
    (List.exists
       (function Runtime.Supervisor.Restarted { core = 1; _ } -> true | _ -> false)
       (Runtime.Supervisor.events (Runtime.Pool.supervisor pool)));
  Alcotest.(check bool) "injection counted" true (counter_value snap "faults.injected_crashes" >= 1);
  Alcotest.(check bool) "crash counted" true (counter_value snap "pool.worker_crashes" >= 1);
  Alcotest.(check bool) "restart counted" true (counter_value snap "supervisor.restarts" >= 1)

let test_repeated_crashes_exhaust_restart_budget () =
  let trace = mixed_trace 72 1200 120 in
  let plan = plan_of ~cores:4 "fw" in
  let supervisor = { Runtime.Supervisor.default_config with max_restarts = 2 } in
  (* the worker dies on every batch it attempts: 2 restarts, then give up *)
  with_fault_plan "crash@1:0x1000000" @@ fun () ->
  with_pool ~cores:4 ~supervisor @@ fun pool ->
  let nf = Nfs.Registry.find_exn "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let v = Runtime.Pool.run pool plan trace in
  (* lossless: after the give-up the producer drained the ring inline *)
  Alcotest.(check bool) "verdicts == sequential across permanent failure" true
    (verdicts_equal seq v);
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "restart budget spent" 2 s.Runtime.Pool.restarts;
  Alcotest.(check (list int)) "core 1 failed permanently" [ 1 ] s.Runtime.Pool.failed_cores;
  Alcotest.(check (list int)) "live cores" [ 0; 2; 3 ] (Runtime.Pool.live_cores pool);
  Alcotest.(check bool) "gave-up event recorded" true
    (List.exists
       (function Runtime.Supervisor.Gave_up { core = 1; _ } -> true | _ -> false)
       (Runtime.Supervisor.events (Runtime.Pool.supervisor pool)))

(* --- permanent failure -> indirection-table remap ---------------------------- *)

let test_failed_core_buckets_migrate () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 73 1500 150 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:4 "fw" in
  with_pool ~cores:4 ~supervisor:no_restart_supervisor @@ fun pool ->
  (* run 1: core 1 dies on its first batch and is written off *)
  (with_fault_plan "crash@1:0x1000000" @@ fun () ->
   ignore (Runtime.Pool.run pool plan trace));
  Alcotest.(check (list int)) "core 1 failed" [ 1 ] (Runtime.Pool.failed_cores pool);
  (* run 2, faults cleared: the RETA is remapped, so every packet lands on
     a live core — the dead core serves exactly zero packets *)
  Telemetry.reset ();
  Telemetry.enable ();
  let v = Runtime.Pool.run pool plan trace in
  Telemetry.disable ();
  let snap = Telemetry.snapshot () in
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "dead core serves nothing" 0 s.Runtime.Pool.last_per_core_pkts.(1);
  Alcotest.(check int) "every packet on exactly one live core" (Array.length trace)
    (Array.fold_left ( + ) 0 s.Runtime.Pool.last_per_core_pkts);
  Array.iteri
    (fun core n ->
      if core <> 1 then
        Alcotest.(check bool) (Printf.sprintf "live core %d used" core) true (n > 0))
    s.Runtime.Pool.last_per_core_pkts;
  Alcotest.(check bool) "remap counted" true (counter_value snap "pool.reta_remaps" >= 1);
  (* flow state still shards correctly: the migrated flows behave as
     sequentially (fw state is flow-local, and whole buckets moved) *)
  Alcotest.(check bool) "verdicts == sequential after failover" true (verdicts_equal seq v)

(* --- backpressure: full rings and dead consumers ----------------------------- *)

let backpressure_cases =
  [
    ("block", Runtime.Pool.Block);
    ("drop", Runtime.Pool.Drop { max_spins = 200 });
    ("shed", Runtime.Pool.Shed);
  ]

let test_stalled_consumer_terminates () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 74 800 100 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:2 "fw" in
  List.iter
    (fun (name, bp) ->
      (* the consumer freezes before its first batch while the producer
         keeps submitting into a 2-slot ring: the ring fills and the
         backpressure policy decides.  The old unbounded spin livelocked
         here for the drop/shed workloads' latency budget. *)
      with_fault_plan "stall@1:0:2000000" @@ fun () ->
      with_pool ~cores:2 ~ring_capacity:2 ~batch_size:8 ~backpressure:bp @@ fun pool ->
      let v = Runtime.Pool.run pool plan trace in
      let s = Runtime.Pool.stats pool in
      Alcotest.(check bool) (name ^ ": stall observed") true (s.Runtime.Pool.ring_full_stalls >= 1);
      match bp with
      | Runtime.Pool.Block ->
          (* lossless: blocking waited the stall out *)
          Alcotest.(check bool) "block: verdicts == sequential" true (verdicts_equal seq v);
          Alcotest.(check int) "block: no drops" 0 s.Runtime.Pool.dropped_batches
      | Runtime.Pool.Drop _ | Runtime.Pool.Shed ->
          Alcotest.(check bool) (name ^ ": drops counted") true (s.Runtime.Pool.dropped_batches > 0);
          Alcotest.(check bool)
            (name ^ ": stalled core dropped")
            true
            (s.Runtime.Pool.per_core_drops.(1) > 0);
          Alcotest.(check bool)
            (name ^ ": drop packets accounted")
            true
            (s.Runtime.Pool.dropped_pkts >= s.Runtime.Pool.dropped_batches))
    backpressure_cases

let test_dead_consumer_terminates () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 75 800 100 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:2 "fw" in
  List.iter
    (fun (name, bp) ->
      (* the consumer dies permanently on its first batch: under every
         policy the producer must fail over (drain inline) rather than
         livelock on the full ring *)
      with_fault_plan "crash@1:0x1000000" @@ fun () ->
      with_pool ~cores:2 ~ring_capacity:2 ~batch_size:8 ~backpressure:bp
        ~supervisor:no_restart_supervisor
      @@ fun pool ->
      let v = Runtime.Pool.run pool plan trace in
      let s = Runtime.Pool.stats pool in
      Alcotest.(check (list int)) (name ^ ": core 1 failed") [ 1 ] s.Runtime.Pool.failed_cores;
      Alcotest.(check bool) (name ^ ": drained inline") true (s.Runtime.Pool.inline_batches >= 1);
      if bp = Runtime.Pool.Block then
        (* nothing was dropped on the way to the failover *)
        Alcotest.(check bool) (name ^ ": verdicts == sequential") true (verdicts_equal seq v)
      else begin
        (* detection is racy under drop/shed (batches can be shed before
           the death is noticed), so only the accounting is asserted *)
        ignore seq;
        Alcotest.(check bool)
          (name ^ ": drop accounting coherent")
          true
          (s.Runtime.Pool.dropped_pkts >= s.Runtime.Pool.dropped_batches
          && s.Runtime.Pool.dropped_pkts <= Array.length trace)
      end)
    backpressure_cases

let test_stuck_worker_detected () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 76 800 100 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:2 "fw" in
  with_fault_plan "stall@1:0:5000000" @@ fun () ->
  with_pool ~cores:2 @@ fun pool ->
  let v = Runtime.Pool.run pool plan trace in
  (* a stuck-but-live domain cannot be preempted: the supervisor flags it
     and the run completes once the stall clears *)
  Alcotest.(check bool) "verdicts == sequential" true (verdicts_equal seq v);
  Alcotest.(check bool) "stuck event recorded" true
    (List.exists
       (function Runtime.Supervisor.Stuck { core = 1; _ } -> true | _ -> false)
       (Runtime.Supervisor.events (Runtime.Pool.supervisor pool)));
  Alcotest.(check int) "no restarts for a live worker" 0
    (Runtime.Supervisor.restarts (Runtime.Pool.supervisor pool))

(* --- solver budget -> degradation ladder ------------------------------------- *)

let test_sat_budget_degrades_to_locks () =
  let request =
    { Maestro.Pipeline.default_request with solver = `Sat; sat_budget = Some (0, 0) }
  in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check bool) "degraded" true (Maestro.Ladder.degraded o.Maestro.Pipeline.ladder);
  (* fw writes state and its digest is small, so the first rung below
     shared-nothing — state-compute replication — catches the fall *)
  Alcotest.(check bool) "scr rung chosen" true
    (o.Maestro.Pipeline.ladder.Maestro.Ladder.chosen = Maestro.Ladder.Scr);
  Alcotest.(check bool) "plan is scr" true
    (o.Maestro.Pipeline.plan.Maestro.Plan.strategy = Maestro.Plan.Scr);
  Alcotest.(check int) "all cores still run" 16 o.Maestro.Pipeline.plan.Maestro.Plan.cores;
  (* the walk records why the top rung was rejected *)
  (match o.Maestro.Pipeline.ladder.Maestro.Ladder.steps with
  | top :: _ ->
      Alcotest.(check bool) "top rung rejected" false top.Maestro.Ladder.taken;
      Alcotest.(check bool) "reason mentions the budget" true
        (contains ~sub:"budget" top.Maestro.Ladder.reason
        || contains ~sub:"gave up" top.Maestro.Ladder.reason)
  | [] -> Alcotest.fail "empty ladder");
  Alcotest.(check bool) "warnings surfaced" true (o.Maestro.Pipeline.plan.Maestro.Plan.warnings <> [])

let test_fault_plan_forces_solver_budget () =
  with_fault_plan "satbudget@0:0" @@ fun () ->
  let request = { Maestro.Pipeline.default_request with solver = `Sat } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check bool) "fault-driven budget degrades the plan" true
    (Maestro.Ladder.degraded o.Maestro.Pipeline.ladder)

let test_too_many_cores_degrades_to_serial () =
  let request = { Maestro.Pipeline.default_request with cores = 300 } in
  let o = Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn "fw") in
  Alcotest.(check bool) "serial rung chosen" true
    (o.Maestro.Pipeline.ladder.Maestro.Ladder.chosen = Maestro.Ladder.Serial);
  Alcotest.(check int) "one core" 1 o.Maestro.Pipeline.plan.Maestro.Plan.cores;
  Alcotest.(check bool) "plan is lock-based (serial)" true
    (o.Maestro.Pipeline.plan.Maestro.Plan.strategy = Maestro.Plan.Lock_based);
  (* the serial plan still preserves semantics, at sequential speed *)
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 77 600 60 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let par = Runtime.Parallel.run o.Maestro.Pipeline.plan trace in
  Alcotest.(check bool) "serial == sequential" true
    (verdicts_equal seq par.Runtime.Parallel.verdicts)

let test_undegraded_ladder_keeps_top_rung () =
  let o = Maestro.Pipeline.parallelize_exn (Nfs.Registry.find_exn "fw") in
  Alcotest.(check bool) "not degraded" false (Maestro.Ladder.degraded o.Maestro.Pipeline.ladder);
  Alcotest.(check bool) "top rung" true
    (o.Maestro.Pipeline.ladder.Maestro.Ladder.chosen = Maestro.Ladder.Shared_nothing)

let suite =
  [
    Alcotest.test_case "fault plan parsing" `Quick test_parse_plans;
    Alcotest.test_case "phase schedule parses and sorts" `Quick test_phase_schedule;
    Alcotest.test_case "disabled hooks are no-ops" `Quick test_disabled_hooks_are_noops;
    Alcotest.test_case "crash -> restart keeps equivalence" `Quick
      test_crash_restart_preserves_equivalence;
    Alcotest.test_case "repeated crashes exhaust restart budget" `Quick
      test_repeated_crashes_exhaust_restart_budget;
    Alcotest.test_case "failed core's buckets migrate" `Quick test_failed_core_buckets_migrate;
    Alcotest.test_case "stalled consumer terminates (3 policies)" `Quick
      test_stalled_consumer_terminates;
    Alcotest.test_case "dead consumer terminates (3 policies)" `Quick
      test_dead_consumer_terminates;
    Alcotest.test_case "stuck worker detected" `Quick test_stuck_worker_detected;
    Alcotest.test_case "sat budget degrades to scr" `Quick test_sat_budget_degrades_to_locks;
    Alcotest.test_case "fault plan forces solver budget" `Quick
      test_fault_plan_forces_solver_budget;
    Alcotest.test_case "too many cores degrade to serial" `Quick
      test_too_many_cores_degrades_to_serial;
    Alcotest.test_case "undegraded ladder keeps top rung" `Quick
      test_undegraded_ladder_keeps_top_rung;
  ]
