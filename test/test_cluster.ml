(* Cluster front tier: maglev table properties, machine-churn fault
   events, and end-to-end tier runs against the sequential oracle. *)

let with_fault_plan spec f =
  (match Faults.parse spec with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Faults.clear f

let test_maglev_deterministic () =
  let a = Cluster.Maglev.build ~machines:[ 0; 1; 2 ] () in
  let b = Cluster.Maglev.build ~machines:[ 2; 0; 1 ] () in
  Alcotest.(check (float 0.0)) "same set, same table" 0.0 (Cluster.Maglev.disruption a b);
  Alcotest.(check (list int)) "machines ascending" [ 0; 1; 2 ] (Cluster.Maglev.machines a);
  Alcotest.(check bool) "prime table" true (Cluster.Maglev.size a >= 251);
  for h = 0 to 9_999 do
    let m = Cluster.Maglev.lookup a h in
    if not (List.mem m [ 0; 1; 2 ]) then Alcotest.fail "lookup outside the machine set"
  done

let test_maglev_balance_and_disruption () =
  let ids = [ 0; 1; 2; 3; 4 ] in
  let t = Cluster.Maglev.build ~machines:ids () in
  List.iter
    (fun (_, share) ->
      Alcotest.(check bool) "share within 2x of fair" true (share <= 2.0 /. 5.0))
    (Cluster.Maglev.shares t);
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (Cluster.Maglev.shares t) in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 sum;
  let joined = Cluster.Maglev.build ~machines:(ids @ [ 5 ]) () in
  Alcotest.(check bool) "join disruption <= 2/6" true
    (Cluster.Maglev.disruption t joined <= 2.0 /. 6.0);
  let left = Cluster.Maglev.build ~machines:[ 1; 2; 3; 4 ] () in
  Alcotest.(check bool) "leave disruption <= 2/5" true
    (Cluster.Maglev.disruption t left <= 2.0 /. 5.0);
  (* survivors keep their surviving slots: a departed machine's slots are
     the only ones that must move *)
  let moved = ref 0 in
  for i = 0 to Cluster.Maglev.size t - 1 do
    if Cluster.Maglev.slot_owner t i <> 0 && Cluster.Maglev.slot_owner t i <> Cluster.Maglev.slot_owner left i
    then incr moved
  done;
  Alcotest.(check bool) "surviving slots mostly stable" true
    (float_of_int !moved /. float_of_int (Cluster.Maglev.size t) <= 0.05)

let test_machine_events_parse () =
  match Faults.parse "leave@3:1;join@2:4;fail@5:0" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Faults.install plan;
      Fun.protect ~finally:Faults.clear @@ fun () ->
      let evs = Faults.machine_events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      (match evs with
      | [ (e1, a1, m1); (e2, a2, m2); (e3, a3, m3) ] ->
          Alcotest.(check bool) "ascending epochs" true (e1 <= e2 && e2 <= e3);
          Alcotest.(check (list int)) "epochs" [ 2; 3; 5 ] [ e1; e2; e3 ];
          Alcotest.(check (list int)) "machines" [ 4; 1; 0 ] [ m1; m2; m3 ];
          Alcotest.(check bool) "actions" true
            (a1 = Faults.Join && a2 = Faults.Leave && a3 = Faults.Fail)
      | _ -> Alcotest.fail "expected three machine events")

let test_machine_events_reject_malformed () =
  (match Faults.parse "join@1" with
  | Ok _ -> Alcotest.fail "join without a machine id must not parse"
  | Error _ -> ());
  match Faults.parse "hop@1:2" with
  | Ok _ -> Alcotest.fail "unknown machine event must not parse"
  | Error _ -> ()

let small_config machines =
  {
    Cluster.Tier.default_config with
    Cluster.Tier.machines;
    epoch_pkts = 512;
    request = { Maestro.Pipeline.default_request with cores = 2 };
  }

let small_trace ?(flows = 128) ?(pkts = 2_048) seed =
  let rng = Random.State.make [| seed |] in
  let fs = Traffic.Gen.flows rng flows in
  let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts } in
  fst (Traffic.Gen.steady_uniform ~spec rng ~flows:fs)

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) ->
             pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let test_tier_steady_matches_sequential () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = small_trace 11 in
  match Cluster.Tier.build ~config:(small_config 3) nf with
  | Error e -> Alcotest.fail e
  | Ok tier ->
      let verdicts, stats = Cluster.Tier.run tier trace in
      Alcotest.(check bool) "verdicts = sequential" true
        (verdicts_equal (Runtime.Parallel.run_sequential nf trace) verdicts);
      Alcotest.(check int) "no dead hits" 0 stats.Cluster.Tier.dead_hits;
      Alcotest.(check int) "no split flows" 0 stats.Cluster.Tier.affinity_violations;
      Alcotest.(check int) "every packet matched" 0 stats.Cluster.Tier.unmatched;
      Alcotest.(check int) "all machines up" 3
        (List.length (Cluster.Tier.live_machines tier))

let test_tier_survives_failure () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = small_trace 23 in
  with_fault_plan "fail@1:1" @@ fun () ->
  match Cluster.Tier.build ~config:(small_config 3) nf with
  | Error e -> Alcotest.fail e
  | Ok tier ->
      Alcotest.(check bool) "fw admits digests" true (Cluster.Tier.scr_admissible tier);
      let verdicts, stats = Cluster.Tier.run tier trace in
      Alcotest.(check bool) "verdicts survive the crash" true
        (verdicts_equal (Runtime.Parallel.run_sequential nf trace) verdicts);
      Alcotest.(check int) "zero lost flows" 0 stats.Cluster.Tier.lost_flows;
      Alcotest.(check bool) "rebuilt from digests" true
        (stats.Cluster.Tier.rebuilt_flows > 0);
      Alcotest.(check int) "dead machine serves nothing" 0 stats.Cluster.Tier.dead_hits;
      Alcotest.(check (list int)) "survivors" [ 0; 2 ] (Cluster.Tier.live_machines tier)

let test_tier_join_and_leave () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = small_trace 31 in
  with_fault_plan "join@1:3;leave@2:0" @@ fun () ->
  match Cluster.Tier.build ~config:(small_config 3) nf with
  | Error e -> Alcotest.fail e
  | Ok tier ->
      let verdicts, stats = Cluster.Tier.run tier trace in
      Alcotest.(check bool) "verdicts survive the churn" true
        (verdicts_equal (Runtime.Parallel.run_sequential nf trace) verdicts);
      Alcotest.(check int) "two events" 2 (List.length stats.Cluster.Tier.events);
      Alcotest.(check bool) "migration happened" true (stats.Cluster.Tier.moved_flows > 0);
      Alcotest.(check int) "nothing dropped" 0 stats.Cluster.Tier.dropped_flows;
      Alcotest.(check (list int)) "final fleet" [ 1; 2; 3 ]
        (Cluster.Tier.live_machines tier)

let test_tier_rejects_shared_state_rungs () =
  let nf = Nfs.Registry.find_exn "fw" in
  let config =
    {
      (small_config 2) with
      Cluster.Tier.request =
        { Maestro.Pipeline.default_request with cores = 2; strategy = `Force_locks };
    }
  in
  match Cluster.Tier.build ~config nf with
  | Ok _ -> Alcotest.fail "a lock-rung plan must not scale out"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "maglev deterministic" `Quick test_maglev_deterministic;
    Alcotest.test_case "maglev balance and disruption" `Quick
      test_maglev_balance_and_disruption;
    Alcotest.test_case "machine events parse" `Quick test_machine_events_parse;
    Alcotest.test_case "machine events reject malformed" `Quick
      test_machine_events_reject_malformed;
    Alcotest.test_case "tier steady = sequential" `Quick test_tier_steady_matches_sequential;
    Alcotest.test_case "tier survives failure" `Quick test_tier_survives_failure;
    Alcotest.test_case "tier join and leave" `Quick test_tier_join_and_leave;
    Alcotest.test_case "tier rejects shared-state rungs" `Quick
      test_tier_rejects_shared_state_rungs;
  ]
