(* Tests for the CDCL SAT solver. *)

open Sat

let fresh_vars s n = List.init n (fun _ -> Solver.new_var s)

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.value s v)

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  Solver.add_clause s [ Lit.neg v ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "not okay" false (Solver.okay s)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_implication_chain () =
  (* x0 -> x1 -> ... -> x9, x0 true: all must be true *)
  let s = Solver.create () in
  let vars = fresh_vars s 10 in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        Solver.add_clause s [ Lit.neg a; Lit.pos b ];
        chain rest
    | _ -> ()
  in
  chain vars;
  Solver.add_clause s [ Lit.pos (List.hd vars) ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  List.iter (fun v -> Alcotest.(check bool) "implied" true (Solver.value s v)) vars

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classically unsat, requires real conflict analysis *)
  let s = Solver.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Solver.new_var s)) in
  for i = 0 to 2 do
    Solver.add_clause s [ Lit.pos p.(i).(0); Lit.pos p.(i).(1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_pigeonhole_4_4 () =
  let s = Solver.create () in
  let n = 4 in
  let p = Array.init n (fun _ -> Array.init n (fun _ -> Solver.new_var s)) in
  for i = 0 to n - 1 do
    Solver.add_clause s (List.init n (fun h -> Lit.pos p.(i).(h)))
  done;
  for h = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "sat (equal holes)" true (Solver.solve s = Solver.Sat)

let test_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.neg a; Lit.pos b ];
  Alcotest.(check bool) "sat under a" true (Solver.solve ~assumptions:[ Lit.pos a ] s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.value s b);
  Alcotest.(check bool) "unsat under a,~b" true
    (Solver.solve ~assumptions:[ Lit.pos a; Lit.neg b ] s = Solver.Unsat);
  Alcotest.(check bool) "still okay" true (Solver.okay s);
  Alcotest.(check bool) "sat again with no assumptions" true (Solver.solve s = Solver.Sat)

let test_unsat_core () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  (* a & b are contradictory via clauses; c is irrelevant *)
  Solver.add_clause s [ Lit.neg a; Lit.neg b ];
  let assumptions = [ Lit.pos a; Lit.pos b; Lit.pos c ] in
  Alcotest.(check bool) "unsat" true (Solver.solve ~assumptions s = Solver.Unsat);
  let core = Solver.unsat_core s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.exists (Lit.equal l) assumptions) core);
  Alcotest.(check bool) "c not in core" true
    (not (List.exists (Lit.equal (Lit.pos c)) core));
  (* the core must itself be unsat *)
  Alcotest.(check bool) "core is unsat" true (Solver.solve ~assumptions:core s = Solver.Unsat)

let test_incremental () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ Lit.neg a ];
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b now true" true (Solver.value s b);
  Solver.add_clause s [ Lit.neg b ];
  Alcotest.(check bool) "now unsat" true (Solver.solve s = Solver.Unsat)

let test_tseitin_xor_chain () =
  (* x0 ^ x1 ^ x2 = 1 with x0=1, x1=1 forces x2=1 *)
  let s = Solver.create () in
  let vars = fresh_vars s 3 in
  Tseitin.xor_clause s (List.map Lit.pos vars) true;
  Solver.add_clause s [ Lit.pos (List.nth vars 0) ];
  Solver.add_clause s [ Lit.pos (List.nth vars 1) ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x2" true (Solver.value s (List.nth vars 2))

let test_tseitin_formula () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  (* (a | b) & (a -> c) & !b  =>  a & c *)
  Tseitin.(assert_formula s (And [ Or [ atom a; atom b ]; Imp (atom a, atom c); Not (atom b) ]));
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a" true (Solver.value s a);
  Alcotest.(check bool) "c" true (Solver.value s c);
  Alcotest.(check bool) "not b" false (Solver.value s b)

let test_tseitin_iff_xor () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Tseitin.(assert_formula s (Iff (atom a, atom b)));
  Tseitin.(assert_formula s (Xor (atom a, atom b)));
  Alcotest.(check bool) "iff & xor is unsat" true (Solver.solve s = Solver.Unsat)

let parse_ok text =
  match Dimacs.parse text with
  | Ok cnf -> cnf
  | Error e -> Alcotest.failf "dimacs parse: %s" e

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = parse_ok text in
  Alcotest.(check int) "nvars" 3 cnf.Dimacs.nvars;
  Alcotest.(check int) "nclauses" 2 (List.length cnf.Dimacs.clauses);
  let s = Solver.create () in
  Dimacs.load s cnf;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  let printed = Format.asprintf "%a" Dimacs.print cnf in
  let reparsed = parse_ok printed in
  Alcotest.(check int) "reparse clauses" 2 (List.length reparsed.Dimacs.clauses)

let test_dimacs_errors () =
  let bad text =
    match Dimacs.parse text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error _ -> ()
  in
  bad "1 -2 0\n";
  (* no problem line *)
  bad "p cnf 2 1\n1 -3 0\n";
  (* variable out of range *)
  bad "p cnf nope 1\n1 0\n";
  (* malformed problem line *)
  bad "p cnf 2 1\n1 x 0\n" (* junk token *)

let test_budget_unknown () =
  (* A zero budget exhausts immediately; the solver must stay usable and
     find the real answer once the budget is lifted. *)
  let s = Solver.create () in
  let p = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Solver.new_var s)) in
  for i = 0 to 3 do
    Solver.add_clause s [ Lit.pos p.(i).(0); Lit.pos p.(i).(1); Lit.pos p.(i).(2) ]
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "zero budget is unknown" true
    (Solver.solve ~budget:(0, 0) s = Solver.Unknown);
  Alcotest.(check bool) "still okay after unknown" true (Solver.okay s);
  Alcotest.(check bool) "tiny conflict budget is unknown" true
    (Solver.solve ~budget:(1, -1) s = Solver.Unknown);
  Alcotest.(check bool) "unlimited budget solves" true
    (Solver.solve ~budget:(-1, -1) s = Solver.Unsat)

let test_budget_generous_solves () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Solver.add_clause s [ Lit.neg a; Lit.pos b ];
  Alcotest.(check bool) "generous budget reaches sat" true
    (Solver.solve ~budget:(1000, 100000) s = Solver.Sat);
  Alcotest.(check bool) "propagation counter advanced" true (Solver.n_propagations s > 0)

(* --- properties --------------------------------------------------------- *)

(* Random 3-SAT around the satisfiable regime, cross-checked against a brute
   force enumeration. *)
let brute_force nvars clauses =
  let rec go assignment v =
    if v = nvars then
      List.for_all
        (List.exists (fun l ->
             let value = List.nth assignment (Lit.var l) in
             if Lit.sign l then value else not value))
        clauses
    else go (assignment @ [ true ]) (v + 1) || go (assignment @ [ false ]) (v + 1)
  in
  go [] 0

let gen_cnf =
  QCheck.Gen.(
    pair (int_range 1 8) (int_range 1 30) >>= fun (nvars, nclauses) ->
    let gen_lit = map2 (fun v s -> Lit.make (v mod nvars) s) (int_bound (nvars - 1)) bool in
    list_repeat nclauses (list_size (int_range 1 3) gen_lit) >|= fun clauses ->
    (nvars, clauses))

let prop_agrees_with_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force on small CNFs" ~count:300
    (QCheck.make gen_cnf) (fun (nvars, clauses) ->
      let s = Solver.create () in
      ignore (fresh_vars s nvars);
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force nvars clauses in
      match Solver.solve s with
      | Solver.Sat ->
          expected
          && List.for_all
               (List.exists (fun l -> Solver.lit_value s l))
               clauses
      | Solver.Unsat -> not expected
      | Solver.Unknown -> false (* no budget was given: Unknown is a bug *))

let prop_core_is_unsat =
  QCheck.Test.make ~name:"unsat cores are themselves unsat" ~count:100
    (QCheck.make gen_cnf) (fun (nvars, clauses) ->
      let s = Solver.create () in
      let vars = fresh_vars s nvars in
      List.iter (Solver.add_clause s) clauses;
      let assumptions = List.map Lit.pos vars in
      match Solver.solve ~assumptions s with
      | Solver.Sat -> true
      | Solver.Unsat ->
          let core = Solver.unsat_core s in
          (not (Solver.okay s)) || Solver.solve ~assumptions:core s = Solver.Unsat
      | Solver.Unknown -> false)

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "implication chain" `Quick test_implication_chain;
    Alcotest.test_case "pigeonhole 3-into-2 unsat" `Quick test_pigeonhole_3_2;
    Alcotest.test_case "pigeonhole 4-into-4 sat" `Quick test_pigeonhole_4_4;
    Alcotest.test_case "assumptions" `Quick test_assumptions;
    Alcotest.test_case "unsat core" `Quick test_unsat_core;
    Alcotest.test_case "incremental" `Quick test_incremental;
    Alcotest.test_case "tseitin xor chain" `Quick test_tseitin_xor_chain;
    Alcotest.test_case "tseitin formula" `Quick test_tseitin_formula;
    Alcotest.test_case "tseitin iff+xor unsat" `Quick test_tseitin_iff_xor;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs parse errors" `Quick test_dimacs_errors;
    Alcotest.test_case "budget exhaustion returns unknown" `Quick test_budget_unknown;
    Alcotest.test_case "generous budget still solves" `Quick test_budget_generous_solves;
    QCheck_alcotest.to_alcotest prop_agrees_with_brute_force;
    QCheck_alcotest.to_alcotest prop_core_is_unsat;
  ]
