(* Tests for the NIC library: Toeplitz hash (against the published Microsoft
   verification vectors), field sets, capability models, RETA, RSS. *)

open Packet
open Nic

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

(* The Microsoft RSS hash verification suite: (src ip:port, dst ip:port,
   expected hash with TCP ports, expected hash over addresses only). *)
let microsoft_vectors =
  [
    (ip 66 9 149 187, 2794, ip 161 142 100 80, 1766, 0x51ccc178, 0x323e8fc2);
    (ip 199 92 111 2, 14230, ip 65 69 140 83, 4739, 0xc626b0ea, 0xd718262a);
    (ip 24 19 198 95, 12898, ip 12 22 207 184, 38024, 0x5c2b394a, 0xd2d0a5de);
    (ip 38 27 205 30, 48228, ip 209 142 163 6, 2217, 0xafc7327f, 0x82989176);
    (ip 153 39 163 191, 44251, ip 202 188 127 2, 1303, 0x10e828a2, 0x5d1809c5);
  ]

let test_toeplitz_microsoft_tcp () =
  List.iter
    (fun (src, sport, dst, dport, expected_tcp, _) ->
      let p = Pkt.make ~ip_src:src ~ip_dst:dst ~src_port:sport ~dst_port:dport () in
      match Field_set.hash_input Field_set.ipv4_tcp p with
      | None -> Alcotest.fail "no hash input"
      | Some d ->
          Alcotest.(check int) "tcp hash" expected_tcp
            (Toeplitz.hash_int ~key:Toeplitz.microsoft_test_key d))
    microsoft_vectors

let test_toeplitz_microsoft_ip_only () =
  List.iter
    (fun (src, _, dst, _, _, expected_ip) ->
      let p = Pkt.make ~ip_src:src ~ip_dst:dst ~src_port:0 ~dst_port:0 () in
      match Field_set.hash_input Field_set.ipv4 p with
      | None -> Alcotest.fail "no hash input"
      | Some d ->
          Alcotest.(check int) "ip hash" expected_ip
            (Toeplitz.hash_int ~key:Toeplitz.microsoft_test_key d))
    microsoft_vectors

let test_toeplitz_zero_key () =
  let key = Bitvec.create (52 * 8) in
  let p = Pkt.make ~ip_src:123 ~ip_dst:456 ~src_port:7 ~dst_port:8 () in
  match Field_set.hash_input Field_set.ipv4_tcp p with
  | None -> Alcotest.fail "no input"
  | Some d -> Alcotest.(check int) "zero key hashes to zero" 0 (Toeplitz.hash_int ~key d)

let test_toeplitz_key_too_short () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Toeplitz.hash ~key:(Bitvec.create 64) (Bitvec.create 96));
       false
     with Invalid_argument _ -> true)

(* A key made of a repeated 16-bit pattern hashes symmetrically under
   src/dst swap of both addresses and ports — the Woo & Park construction
   our RS3 must rediscover. *)
let test_toeplitz_repeated_pattern_symmetry () =
  let key = Bitvec.of_hex (String.concat "" (List.init 26 (fun _ -> "6d5a"))) in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 100 do
    let p =
      Pkt.make ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:(Random.State.int rng 0x3fffffff)
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    let d = Option.get (Field_set.hash_input Field_set.ipv4_tcp p) in
    let d' = Option.get (Field_set.hash_input Field_set.ipv4_tcp (Pkt.flip p)) in
    Alcotest.(check int32) "symmetric" (Toeplitz.hash ~key d) (Toeplitz.hash ~key d')
  done

let test_field_set_canonical_order () =
  let a = Field_set.make [ Field.Dst_port; Field.Ip_src; Field.Src_port; Field.Ip_dst ] in
  Alcotest.(check bool) "order-insensitive" true (Field_set.equal a Field_set.ipv4_tcp);
  Alcotest.(check int) "input bits" 96 (Field_set.input_bits a)

let test_field_set_offsets () =
  Alcotest.(check (option int)) "ip_src" (Some 0) (Field_set.offset Field_set.ipv4_tcp Field.Ip_src);
  Alcotest.(check (option int)) "ip_dst" (Some 32) (Field_set.offset Field_set.ipv4_tcp Field.Ip_dst);
  Alcotest.(check (option int)) "sport" (Some 64) (Field_set.offset Field_set.ipv4_tcp Field.Src_port);
  Alcotest.(check (option int)) "dport" (Some 80) (Field_set.offset Field_set.ipv4_tcp Field.Dst_port);
  Alcotest.(check (option int)) "absent" None (Field_set.offset Field_set.ipv4 Field.Src_port)

let test_field_set_rejects_mac () =
  Alcotest.(check bool) "mac rejected" true
    (try
       ignore (Field_set.make [ Field.Eth_src ]);
       false
     with Invalid_argument _ -> true)

let test_field_set_matches () =
  let tcp = Pkt.make ~ip_src:1 ~ip_dst:2 ~src_port:3 ~dst_port:4 () in
  let icmp = Pkt.make ~proto:(Pkt.Other 1) ~ip_src:1 ~ip_dst:2 ~src_port:0 ~dst_port:0 () in
  Alcotest.(check bool) "tcp matches" true (Field_set.matches Field_set.ipv4_tcp tcp);
  Alcotest.(check bool) "icmp no ports" false (Field_set.matches Field_set.ipv4_tcp icmp);
  Alcotest.(check bool) "icmp ip-only ok" true (Field_set.matches Field_set.ipv4 icmp)

let test_nic_capabilities () =
  Alcotest.(check bool) "e810 supports tcp tuple" true (Model.supports Model.E810 Field_set.ipv4_tcp);
  Alcotest.(check bool) "e810 arbitrary subset" true
    (Model.supports Model.E810 (Field_set.make [ Field.Ip_dst ]));
  Alcotest.(check bool) "e810 dst-only pair" true
    (Model.supports Model.E810 (Field_set.make [ Field.Ip_dst; Field.Dst_port ]));
  Alcotest.(check bool) "x710 is rigid" false
    (Model.supports Model.X710 (Field_set.make [ Field.Ip_dst ]));
  Alcotest.(check bool) "x710 address pair ok" true (Model.supports Model.X710 Field_set.ipv4);
  Alcotest.(check int) "e810 key bytes" 52 (Model.key_bytes Model.E810);
  Alcotest.(check int) "x710 key bytes" 40 (Model.key_bytes Model.X710)

let test_best_set_covering () =
  (* the Policer scenario: needs dst IP only; the E810 hashes exactly that
     field (L3_DST_ONLY), the X710 falls back to its rigid address pair *)
  (match Model.best_set_covering Model.E810 [ Field.Ip_dst ] with
  | None -> Alcotest.fail "should find a covering set"
  | Some s ->
      Alcotest.(check bool) "e810 picks the exact subset" true
        (Field_set.equal s (Field_set.make [ Field.Ip_dst ])));
  (match Model.best_set_covering Model.X710 [ Field.Ip_dst ] with
  | None -> Alcotest.fail "x710 should cover"
  | Some s -> Alcotest.(check bool) "x710 falls back to the pair" true (Field_set.equal s Field_set.ipv4));
  Alcotest.(check bool) "mac is uncoverable" true
    (Model.best_set_covering Model.E810 [ Field.Eth_src ] = None)

let test_reta_round_robin () =
  let r = Reta.create ~size:8 ~queues:3 () in
  Alcotest.(check (array int)) "pattern" [| 0; 1; 2; 0; 1; 2; 0; 1 |] (Reta.entries r);
  Alcotest.(check int) "lookup masks" (Reta.lookup r 9) (Reta.lookup r 1)

let test_reta_bad_size () =
  Alcotest.(check bool) "power of two" true
    (try
       ignore (Reta.create ~size:100 ~queues:2 ());
       false
     with Invalid_argument _ -> true)

let test_reta_rebalance () =
  let r = Reta.create ~size:8 ~queues:2 () in
  (* all the load lands in buckets 0,2,4,6 -> all on queue 0 *)
  let load = [| 10.; 0.; 10.; 0.; 10.; 0.; 10.; 0. |] in
  let before = Reta.imbalance r ~bucket_load:load in
  Alcotest.(check bool) "imbalanced before" true (before > 1.9);
  let r' = Reta.rebalance r ~bucket_load:load in
  let after = Reta.imbalance r' ~bucket_load:load in
  Alcotest.(check bool) "balanced after" true (after <= 1.01);
  Alcotest.(check int) "queues preserved" 2 (Reta.queues r')

let test_reta_remap_failover () =
  let r = Reta.create ~size:16 ~queues:4 () in
  let live = [| true; false; true; true |] in
  let r' = Reta.remap r ~live in
  let before = Reta.entries r and after = Reta.entries r' in
  Array.iteri
    (fun i q ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d live" i) true live.(q);
      (* buckets already on live queues must not move *)
      if live.(before.(i)) then
        Alcotest.(check int) (Printf.sprintf "bucket %d untouched" i) before.(i) q)
    after;
  Alcotest.(check int) "queue count preserved" 4 (Reta.queues r');
  (* the dead queue's buckets spread over every live queue, not one *)
  let migrated = Array.to_list after |> List.filteri (fun i _ -> before.(i) = 1) in
  List.iter
    (fun q ->
      Alcotest.(check bool) (Printf.sprintf "queue %d got a share" q) true (List.mem q migrated))
    [ 0; 2; 3 ]

let test_reta_remap_skewed_load_stays_balanced () =
  (* rebalance under skew, then kill a queue: every flow still lands on
     exactly one live queue and the survivors share the dead queue's load *)
  let st = Random.State.make [| 97 |] in
  let r = Reta.create ~size:32 ~queues:4 () in
  let load = Array.init 32 (fun _ -> Random.State.float st 1.0 ** 4.0 *. 100.) in
  let r = Reta.rebalance r ~bucket_load:load in
  let live = [| true; true; false; true |] in
  let r' = Reta.remap r ~live in
  Array.iter (fun q -> Alcotest.(check bool) "live queue" true live.(q)) (Reta.entries r');
  let loads = Reta.queue_loads r' ~bucket_load:load in
  Alcotest.(check (float 1e-9)) "dead queue serves nothing" 0.0 loads.(2);
  let total = Array.fold_left ( +. ) 0.0 load in
  Alcotest.(check (float 1e-6)) "no load lost" total (Array.fold_left ( +. ) 0.0 loads)

let test_reta_remap_errors () =
  let r = Reta.create ~size:8 ~queues:2 () in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Reta.remap r ~live:[| true |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "all-dead rejected" true
    (try
       ignore (Reta.remap r ~live:[| false; false |]);
       false
     with Invalid_argument _ -> true)

let test_rss_dispatch_deterministic () =
  let rng = Random.State.make [| 7 |] in
  let key = Rss.random_key rng Model.E810 in
  let rss = Rss.configure ~key ~sets:[ Field_set.ipv4_tcp ] ~queues:4 () in
  let p = Pkt.make ~ip_src:(ip 10 1 2 3) ~ip_dst:(ip 10 4 5 6) ~src_port:111 ~dst_port:222 () in
  let q = Rss.dispatch rss p in
  Alcotest.(check int) "stable" q (Rss.dispatch rss p);
  Alcotest.(check bool) "in range" true (q >= 0 && q < 4)

let test_rss_unmatched_goes_to_zero () =
  let rng = Random.State.make [| 8 |] in
  let rss = Rss.configure ~key:(Rss.random_key rng Model.E810) ~sets:[ Field_set.ipv4_tcp ] ~queues:4 () in
  let icmp = Pkt.make ~proto:(Pkt.Other 1) ~ip_src:1 ~ip_dst:2 ~src_port:0 ~dst_port:0 () in
  Alcotest.(check int) "default queue" 0 (Rss.dispatch rss icmp)

let test_rss_validates_key_size () =
  Alcotest.(check bool) "wrong key size" true
    (try
       ignore (Rss.configure ~key:(Bitvec.create 8) ~sets:[] ~queues:1 ());
       false
     with Invalid_argument _ -> true)

let test_rss_validates_nic_support () =
  let rng = Random.State.make [| 9 |] in
  Alcotest.(check bool) "x710 rejects dst-only" true
    (try
       ignore
         (Rss.configure ~nic:Model.X710
            ~key:(Rss.random_key rng Model.X710)
            ~sets:[ Field_set.make [ Field.Ip_dst ] ]
            ~queues:2 ());
       false
     with Invalid_argument _ -> true)

(* --- compiled (table-driven) Toeplitz ------------------------------------ *)

(* The compiled fast path must be bit-exact against the bit-by-bit oracle on
   the published Microsoft vectors... *)
let test_compiled_matches_microsoft_vectors () =
  let ck = Toeplitz.Key.compile Toeplitz.microsoft_test_key in
  List.iter
    (fun (src, sport, dst, dport, expected_tcp, expected_ip) ->
      let p = Pkt.make ~ip_src:src ~ip_dst:dst ~src_port:sport ~dst_port:dport () in
      let d = Option.get (Field_set.hash_input Field_set.ipv4_tcp p) in
      Alcotest.(check int) "tcp hash (compiled)" expected_tcp (Toeplitz.Key.hash_int ck d);
      let d_ip = Option.get (Field_set.hash_input Field_set.ipv4 p) in
      Alcotest.(check int) "ip hash (compiled)" expected_ip (Toeplitz.Key.hash_int ck d_ip))
    microsoft_vectors

let test_compiled_key_metadata () =
  let ck = Toeplitz.Key.compile Toeplitz.microsoft_test_key in
  Alcotest.(check int) "max input bits" ((40 * 8) - 32) (Toeplitz.Key.max_input_bits ck);
  Alcotest.(check bool) "original key kept" true
    (Bitvec.equal Toeplitz.microsoft_test_key (Toeplitz.Key.key ck))

let test_compiled_rejects_oversized_input () =
  let ck = Toeplitz.Key.compile (Bitvec.create 64) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Toeplitz.Key.hash ck (Bitvec.create 96));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "short key rejected" true
    (try
       ignore (Toeplitz.Key.compile (Bitvec.create 16));
       false
     with Invalid_argument _ -> true)

(* ... and on ≥1000 random (key, input) pairs across every supported
   field-set width, byte-aligned and ragged (sliced prefix sets). *)
let test_compiled_equals_oracle_randomized () =
  let rng = Random.State.make [| 0x70e9 |] in
  (* all supported field-set widths: full tuples plus ragged prefix slices *)
  let widths =
    [ 96; 64; 32; 40; 48; 8; 12; 20; 25; 33; 17; 96; 80; 72; 3; 1 ]
  in
  let checked = ref 0 in
  for _ = 1 to 70 do
    List.iter
      (fun w ->
        let key = Bitvec.random rng (Toeplitz.key_bits_for_input w + (8 * Random.State.int rng 3)) in
        let ck = Toeplitz.Key.compile key in
        let d = Bitvec.random rng w in
        incr checked;
        if Toeplitz.hash ~key d <> Toeplitz.Key.hash ck d then
          Alcotest.failf "compiled hash diverges on key=%s input=%s" (Bitvec.to_hex key)
            (Bitvec.to_hex d))
      widths
  done;
  Alcotest.(check bool) ">= 1000 pairs" true (!checked >= 1000)

let test_rss_compiled_and_reference_dispatch_agree () =
  let rng = Random.State.make [| 0xd15 |] in
  let key = Rss.random_key rng Model.E810 in
  let fast = Rss.configure ~compiled:true ~key ~sets:[ Field_set.ipv4_tcp; Field_set.ipv4 ] ~queues:8 () in
  let slow = Rss.configure ~compiled:false ~key ~sets:[ Field_set.ipv4_tcp; Field_set.ipv4 ] ~queues:8 () in
  Alcotest.(check bool) "fast path on" true (Rss.uses_compiled fast);
  Alcotest.(check bool) "reference path on" false (Rss.uses_compiled slow);
  for _ = 1 to 500 do
    let p =
      Pkt.make
        ~proto:(if Random.State.bool rng then Pkt.Tcp else Pkt.Other 1)
        ~ip_src:(Random.State.int rng 0x3fffffff)
        ~ip_dst:(Random.State.int rng 0x3fffffff)
        ~src_port:(Random.State.int rng 0x10000)
        ~dst_port:(Random.State.int rng 0x10000)
        ()
    in
    Alcotest.(check (option int)) "hash agrees" (Rss.hash_of slow p) (Rss.hash_of fast p);
    Alcotest.(check int) "dispatch agrees" (Rss.dispatch slow p) (Rss.dispatch fast p)
  done

(* --- properties --------------------------------------------------------- *)

let prop_compiled_equals_oracle =
  QCheck.Test.make ~name:"compiled toeplitz equals the bit-by-bit oracle" ~count:500
    QCheck.(pair (int_range 0 1000000) (int_range 1 96))
    (fun (seed, width) ->
      let rng = Random.State.make [| seed; width |] in
      let key = Bitvec.random rng (Toeplitz.key_bits_for_input width) in
      let d = Bitvec.random rng width in
      Toeplitz.hash ~key d = Toeplitz.Key.hash (Toeplitz.Key.compile key) d)

let prop_same_flow_same_queue =
  QCheck.Test.make ~name:"packets of one flow always reach the same queue" ~count:100
    QCheck.(pair (int_range 0 1000000) (int_range 1 16))
    (fun (seed, queues) ->
      let rng = Random.State.make [| seed |] in
      let key = Rss.random_key rng Model.E810 in
      let rss = Rss.configure ~key ~sets:[ Field_set.ipv4_tcp ] ~queues () in
      let p =
        Pkt.make
          ~ip_src:(Random.State.int rng 0x3fffffff)
          ~ip_dst:(Random.State.int rng 0x3fffffff)
          ~src_port:(Random.State.int rng 0x10000)
          ~dst_port:(Random.State.int rng 0x10000)
          ()
      in
      (* size and timestamp never matter *)
      let q1 = Rss.dispatch rss p in
      let q2 = Rss.dispatch rss { p with Pkt.size = 1500; ts_ns = 99 } in
      q1 = q2)

let prop_toeplitz_linear_in_input =
  QCheck.Test.make ~name:"toeplitz is linear over GF(2) in the input" ~count:100
    QCheck.(int_range 0 1000000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let key = Bitvec.random rng (52 * 8) in
      let a = Bitvec.random rng 96 and b = Bitvec.random rng 96 in
      let h v = Toeplitz.hash_int ~key v in
      h (Bitvec.xor a b) = h a lxor h b)

let suite =
  [
    Alcotest.test_case "toeplitz microsoft tcp vectors" `Quick test_toeplitz_microsoft_tcp;
    Alcotest.test_case "toeplitz microsoft ip vectors" `Quick test_toeplitz_microsoft_ip_only;
    Alcotest.test_case "toeplitz zero key" `Quick test_toeplitz_zero_key;
    Alcotest.test_case "toeplitz key too short" `Quick test_toeplitz_key_too_short;
    Alcotest.test_case "repeated-pattern key is symmetric" `Quick
      test_toeplitz_repeated_pattern_symmetry;
    Alcotest.test_case "compiled toeplitz microsoft vectors" `Quick
      test_compiled_matches_microsoft_vectors;
    Alcotest.test_case "compiled key metadata" `Quick test_compiled_key_metadata;
    Alcotest.test_case "compiled toeplitz bounds" `Quick test_compiled_rejects_oversized_input;
    Alcotest.test_case "compiled == oracle on 1000+ random pairs" `Quick
      test_compiled_equals_oracle_randomized;
    Alcotest.test_case "rss compiled/reference dispatch agree" `Quick
      test_rss_compiled_and_reference_dispatch_agree;
    Alcotest.test_case "field set canonical order" `Quick test_field_set_canonical_order;
    Alcotest.test_case "field set offsets" `Quick test_field_set_offsets;
    Alcotest.test_case "field set rejects mac" `Quick test_field_set_rejects_mac;
    Alcotest.test_case "field set matches" `Quick test_field_set_matches;
    Alcotest.test_case "nic capabilities" `Quick test_nic_capabilities;
    Alcotest.test_case "best covering set" `Quick test_best_set_covering;
    Alcotest.test_case "reta round robin" `Quick test_reta_round_robin;
    Alcotest.test_case "reta bad size" `Quick test_reta_bad_size;
    Alcotest.test_case "reta rebalance" `Quick test_reta_rebalance;
    Alcotest.test_case "reta remap failover" `Quick test_reta_remap_failover;
    Alcotest.test_case "reta remap under skew" `Quick test_reta_remap_skewed_load_stays_balanced;
    Alcotest.test_case "reta remap errors" `Quick test_reta_remap_errors;
    Alcotest.test_case "rss dispatch deterministic" `Quick test_rss_dispatch_deterministic;
    Alcotest.test_case "rss unmatched to queue 0" `Quick test_rss_unmatched_goes_to_zero;
    Alcotest.test_case "rss validates key size" `Quick test_rss_validates_key_size;
    Alcotest.test_case "rss validates nic support" `Quick test_rss_validates_nic_support;
    QCheck_alcotest.to_alcotest prop_same_flow_same_queue;
    QCheck_alcotest.to_alcotest prop_toeplitz_linear_in_input;
    QCheck_alcotest.to_alcotest prop_compiled_equals_oracle;
  ]
