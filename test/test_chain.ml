(* Service-chain composition (Dsl.Chain): compose-time validation, the
   3-way differential (fused compiled closure ≡ composed-AST interpreter
   ≡ per-stage interpreter-composition oracle, verdicts AND op-event
   streams), the joint-sharding outcomes of the shipped chains, and
   chain execution on the supervised pool under injected crashes and
   online rebalancing. *)

open Dsl.Ast

let ops_pp fmt (e : Dsl.Interp.op_event) =
  Format.fprintf fmt "%s(%b,%d)" e.Dsl.Interp.obj e.Dsl.Interp.write e.Dsl.Interp.expired

(* Same adversarial trace family as test_compile: a tiny address space
   forces key collisions, capacity-full puts, expiry storms and both
   traffic directions. *)
let hostile_trace ~seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun i ->
      Packet.Pkt.make
        ~port:(Random.State.int rng 2)
        ~ip_src:(Random.State.int rng 8)
        ~ip_dst:(Random.State.int rng 8)
        ~src_port:(Random.State.int rng 4)
        ~dst_port:(Random.State.int rng 4)
        ~ts_ns:(i * Random.State.int rng 5_000_000)
        ())

(* The tentpole equivalence: the fused chain (one composed AST) run
   through the staged compiler AND through the interpreter must be
   observationally identical to the reference semantics — each stage's
   original NF interpreted against its own state, verdicts threaded. *)
let differential3 label chain trace =
  let composed = Dsl.Chain.nf chain in
  let info = Dsl.Check.check_exn composed in
  let i_inst = Dsl.Instance.create composed in
  let bound =
    Dsl.Compile.bind (Dsl.Chain.stage_compiled chain) (Dsl.Instance.create composed)
  in
  let oracle = Dsl.Chain.oracle chain in
  Array.iteri
    (fun i pkt ->
      let i_ops = ref [] and c_ops = ref [] and o_ops = ref [] in
      let a_i =
        Dsl.Interp.process ~on_op:(fun e -> i_ops := e :: !i_ops) composed info i_inst pkt
      in
      let a_c = Dsl.Compile.process ~on_op:(fun e -> c_ops := e :: !c_ops) bound pkt in
      let a_o = Dsl.Chain.oracle_process ~on_op:(fun e -> o_ops := e :: !o_ops) oracle pkt in
      if a_i <> a_c then
        Alcotest.failf "%s: fused-compiled verdict diverges from fused-interp at packet %d (%a)"
          label i Packet.Pkt.pp pkt;
      if a_i <> a_o then
        Alcotest.failf "%s: fused verdict diverges from per-stage oracle at packet %d (%a)"
          label i Packet.Pkt.pp pkt;
      if !i_ops <> !c_ops then
        Alcotest.failf "%s: op stream diverges (interp vs compiled) at packet %d: [%a] vs [%a]"
          label i
          (Format.pp_print_list ops_pp)
          (List.rev !i_ops)
          (Format.pp_print_list ops_pp)
          (List.rev !c_ops);
      if !i_ops <> !o_ops then
        Alcotest.failf "%s: op stream diverges (fused vs oracle) at packet %d: [%a] vs [%a]"
          label i
          (Format.pp_print_list ops_pp)
          (List.rev !i_ops)
          (Format.pp_print_list ops_pp)
          (List.rev !o_ops))
    trace

let test_shipped_chains_differential () =
  List.iteri
    (fun i chain ->
      differential3 chain.Dsl.Chain.name chain (hostile_trace ~seed:(31 + i) 2_000))
    (Nfs.Scenarios.chains ())

(* The same NF twice: namespacing keeps both stages' state disjoint. *)
let test_self_chain_differential () =
  let chain = Dsl.Chain.compose_exn [ Nfs.Registry.find_exn "fw"; Nfs.Registry.find_exn "fw" ] in
  differential3 "fw->fw" chain (hostile_trace ~seed:41 2_000)

(* --- compose-time validation ----------------------------------------------- *)

let fails_with_substring what sub = function
  | Ok _ -> Alcotest.failf "%s: compose unexpectedly succeeded" what
  | Error e ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        n = 0 || go 0
      in
      if not (contains e sub) then
        Alcotest.failf "%s: error %S does not mention %S" what e sub

let test_compose_validation () =
  fails_with_substring "empty chain" "empty" (Dsl.Chain.compose []);
  (* stages must agree on device count *)
  let nop3 = { (Nfs.Registry.find_exn "nop") with devices = 3 } in
  fails_with_substring "device mismatch" "device"
    (Dsl.Chain.compose [ Nfs.Registry.find_exn "fw"; nop3 ]);
  (* a non-final stage must forward through a constant in-range port *)
  let dyn_fwd =
    { name = "dyn_fwd"; devices = 2; state = []; process = Forward In_port }
  in
  fails_with_substring "non-constant forward" "constant"
    (Dsl.Chain.compose [ dyn_fwd; Nfs.Registry.find_exn "fw" ]);
  (* ... but is fine as the final stage, where it is the chain verdict *)
  (match Dsl.Chain.compose [ Nfs.Registry.find_exn "fw"; dyn_fwd ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "dynamic forward in final stage rejected: %s" e);
  (* composition result passes Check as one NF *)
  let chain = Dsl.Chain.compose_exn [ Nfs.Registry.find_exn "fw"; Nfs.Registry.find_exn "nat" ] in
  (match Dsl.Check.check (Dsl.Chain.nf chain) with
  | Ok _ -> ()
  | Error es -> Alcotest.failf "composed chain fails Check: %s" (String.concat "; " es));
  Alcotest.(check string) "default name" "chain_fw_nat" chain.Dsl.Chain.name

let test_stage_attribution () =
  let chain = Nfs.Scenarios.chain_policer_fw_nat () in
  let composed = Dsl.Chain.nf chain in
  (* every namespaced state object maps back to its stage and original name *)
  List.iter
    (fun decl ->
      let obj =
        match decl with
        | Decl_map { name; _ } | Decl_vector { name; _ } | Decl_chain { name; _ }
        | Decl_sketch { name; _ } ->
            name
      in
      match Dsl.Chain.original_obj chain obj with
      | None -> Alcotest.failf "object %s maps to no stage" obj
      | Some (st, orig) ->
          let stage_has =
            List.exists
              (fun d ->
                match d with
                | Decl_map { name; _ } | Decl_vector { name; _ } | Decl_chain { name; _ }
                | Decl_sketch { name; _ } ->
                    name = orig)
              st.Dsl.Chain.nf.state
          in
          if not stage_has then
            Alcotest.failf "object %s: stripped name %s not declared by stage %d (%s)" obj orig
              st.Dsl.Chain.index st.Dsl.Chain.name)
    composed.state;
  Alcotest.(check bool) "unknown object maps to no stage" true
    (Dsl.Chain.stage_of_obj chain "nat_ports" = None)

(* --- joint sharding over the composed AST ----------------------------------- *)

let decision_of chain =
  Maestro.Sharding.decide (Maestro.Report.build (Symbex.Exec.run (Dsl.Chain.nf chain)))

let reasons_string reasons =
  Format.asprintf "%a"
    (Format.pp_print_list Maestro.Sharding.pp_reason)
    reasons

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* fw→nat: the union of both stages' constraints is satisfiable, and R2
   subsumption folds the firewall's 4-tuple under the NAT's server
   two-tuple — the chain still shards shared-nothing. *)
let test_chain_fw_nat_shards () =
  (match decision_of (Nfs.Scenarios.chain_fw_nat ()) with
  | Maestro.Sharding.Shard cs -> Alcotest.(check bool) "has constraints" true (cs <> [])
  | d ->
      Alcotest.failf "expected Shard, got %a" Maestro.Sharding.pp_decision d);
  let request = { Maestro.Pipeline.default_request with cores = 8 } in
  let outcome =
    Maestro.Pipeline.parallelize_exn ~request (Dsl.Chain.nf (Nfs.Scenarios.chain_fw_nat ()))
  in
  Alcotest.(check bool) "shared-nothing plan" true
    (outcome.Maestro.Pipeline.plan.Maestro.Plan.strategy = Maestro.Plan.Shared_nothing)

(* fw→lb: the lb's pool key is a lossy derivation (R4); the union is
   unsatisfiable and the blocked reason names the lb stage's prefix. *)
let test_chain_fw_lb_blocked_names_stage () =
  let chain = Nfs.Scenarios.chain_fw_lb () in
  match decision_of chain with
  | Maestro.Sharding.Blocked reasons ->
      let s = reasons_string reasons in
      Alcotest.(check bool)
        (Printf.sprintf "reason names the lb stage: %s" s)
        true (contains s "s1_lb_")
  | d -> Alcotest.failf "expected Blocked, got %a" Maestro.Sharding.pp_decision d

(* policer→fw→nat: every stage shards alone, the union does not — R3
   disjoint requirements, and the witnesses name the offending pair. *)
let test_chain_policer_fw_nat_disjoint_pair () =
  let chain = Nfs.Scenarios.chain_policer_fw_nat () in
  match decision_of chain with
  | Maestro.Sharding.Blocked reasons ->
      let disjoint =
        List.find_map
          (function
            | Maestro.Sharding.Disjoint { obj_a; obj_b; _ } -> Some (obj_a, obj_b)
            | _ -> None)
          reasons
      in
      (match disjoint with
      | None -> Alcotest.failf "no Disjoint reason in: %s" (reasons_string reasons)
      | Some (obj_a, obj_b) ->
          let stage_idx = function
            | Some obj -> (
                match Dsl.Chain.stage_of_obj chain obj with
                | Some st -> Some st.Dsl.Chain.index
                | None -> None)
            | None -> None
          in
          (match (stage_idx obj_a, stage_idx obj_b) with
          | Some a, Some b ->
              Alcotest.(check bool)
                (Printf.sprintf "witnesses name two different stages (%d vs %d)" a b)
                true (a <> b)
          | _ ->
              Alcotest.failf "Disjoint witnesses unattributed: %s" (reasons_string reasons)))
  | d -> Alcotest.failf "expected Blocked, got %a" Maestro.Sharding.pp_decision d

(* each stage of policer→fw→nat is shardable on its own — the block is a
   property of the composition, not of any one NF *)
let test_chain_stages_shard_alone () =
  List.iter
    (fun (st : Dsl.Chain.stage) ->
      match
        Maestro.Sharding.decide (Maestro.Report.build (Symbex.Exec.run st.Dsl.Chain.nf))
      with
      | Maestro.Sharding.Shard _ -> ()
      | d ->
          Alcotest.failf "stage %s: expected Shard alone, got %a" st.Dsl.Chain.name
            Maestro.Sharding.pp_decision d)
    (Nfs.Scenarios.chain_policer_fw_nat ()).Dsl.Chain.stages

(* --- the chain on the runtime ------------------------------------------------ *)

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) -> pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

(* The composed chain behind Runtime.Parallel: the deterministic model's
   verdicts equal the sequential composed run, which differential3
   already tied to the per-stage oracle. *)
let test_chain_parallel_model () =
  let chain = Nfs.Scenarios.chain_policer_fw_nat () in
  let composed = Dsl.Chain.nf chain in
  let request = { Maestro.Pipeline.default_request with cores = 4 } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request composed).Maestro.Pipeline.plan in
  let trace = hostile_trace ~seed:53 4_000 in
  let seq = Runtime.Parallel.run_sequential composed trace in
  let par = Runtime.Parallel.run plan trace in
  Alcotest.(check bool) "parallel model == sequential composed" true
    (verdicts_equal seq par.Runtime.Parallel.verdicts)

(* Crash/replay semantics hold for a fused chain: under a seeded fault
   plan the supervised pool still reproduces the sequential composed
   verdict for every packet (the chain landed on the SCR rung, where
   pool verdicts are exactly sequential). *)
let test_chain_pool_fault_plan () =
  (match Faults.parse "crash@1:2; crash@2:5" with
  | Ok plan -> Faults.install plan
  | Error e -> Alcotest.fail e);
  Fun.protect ~finally:Faults.clear @@ fun () ->
  let chain = Nfs.Scenarios.chain_policer_fw_nat () in
  let composed = Dsl.Chain.nf chain in
  let request = { Maestro.Pipeline.default_request with cores = 4; seed = 3 } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request composed).Maestro.Pipeline.plan in
  let trace = hostile_trace ~seed:59 4_000 in
  let seq = Runtime.Parallel.run_sequential composed trace in
  Dsl.Compile.set_default true;
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let verdicts = Runtime.Pool.run pool plan trace in
  let stats = Runtime.Pool.stats pool in
  Alcotest.(check bool) "at least one restart" true (stats.Runtime.Pool.restarts >= 1);
  Array.iteri
    (fun i v ->
      if v <> seq.(i) then Alcotest.failf "pool verdict %d diverges from sequential" i)
    verdicts

(* Online rebalancing migrates a fused chain's namespaced state exactly
   like a single NF's: fw→fw is shared-nothing with an exact migration
   plan, so bucket moves carry both stages' flow state and verdicts stay
   sequential. *)
let test_chain_pool_rebalance () =
  let chain =
    Dsl.Chain.compose_exn ~name:"chain_fw_fw"
      [ Nfs.Registry.find_exn "fw"; Nfs.Registry.find_exn "fw" ]
  in
  let composed = Dsl.Chain.nf chain in
  let cores = 4 in
  let request = { Maestro.Pipeline.default_request with cores } in
  let plan = (Maestro.Pipeline.parallelize_exn ~request composed).Maestro.Pipeline.plan in
  Alcotest.(check bool) "fw->fw is shared-nothing" true
    (plan.Maestro.Plan.strategy = Maestro.Plan.Shared_nothing);
  let rng = Random.State.make [| 0x9e1 |] in
  let z = Traffic.Zipf.make ~exponent:1.1 ~nflows:600 () in
  let fs = Traffic.Gen.flows rng 600 in
  let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts = 16_384; reply_fraction = 0.3 } in
  let trace = Traffic.Zipf.trace ~spec rng z ~flows:fs in
  let seq = Runtime.Parallel.run_sequential composed trace in
  Dsl.Compile.set_default true;
  let pool = Runtime.Pool.create ~cores () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let mode = Runtime.Balancer.On { Runtime.Balancer.epoch_pkts = 2048; threshold = 1.05 } in
  let verdicts = Runtime.Pool.run ~rebalance:mode pool plan trace in
  let stats = Runtime.Pool.stats pool in
  Alcotest.(check bool) "verdicts identical to sequential composed" true
    (verdicts_equal seq verdicts);
  let mplan = Runtime.Balancer.migration_plan composed in
  if Runtime.Balancer.exact mplan then begin
    Alcotest.(check bool) "balancer engaged" true (stats.Runtime.Pool.rebalances >= 1);
    Alcotest.(check bool) "chain state migrated" true (stats.Runtime.Pool.migrated_flows >= 1)
  end

let suite =
  [
    Alcotest.test_case "shipped chains: 3-way differential" `Slow
      test_shipped_chains_differential;
    Alcotest.test_case "self chain fw->fw: namespaced state stays disjoint" `Quick
      test_self_chain_differential;
    Alcotest.test_case "compose validation" `Quick test_compose_validation;
    Alcotest.test_case "stage attribution round-trips" `Quick test_stage_attribution;
    Alcotest.test_case "fw->nat: union satisfiable, shared-nothing" `Quick
      test_chain_fw_nat_shards;
    Alcotest.test_case "fw->lb: blocked reason names the lb stage" `Quick
      test_chain_fw_lb_blocked_names_stage;
    Alcotest.test_case "policer->fw->nat: R3 witnesses name the stage pair" `Quick
      test_chain_policer_fw_nat_disjoint_pair;
    Alcotest.test_case "policer->fw->nat: every stage shards alone" `Quick
      test_chain_stages_shard_alone;
    Alcotest.test_case "parallel model matches sequential composed" `Quick
      test_chain_parallel_model;
    Alcotest.test_case "pool under fault plan matches composed oracle" `Quick
      test_chain_pool_fault_plan;
    Alcotest.test_case "pool rebalancing migrates fused chain state" `Slow
      test_chain_pool_rebalance;
  ]
