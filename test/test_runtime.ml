(* Semantic-equivalence tests: the heart of the paper's claim.  Generated
   parallel NFs must behave like their sequential versions. *)

let rng seed = Random.State.make [| seed |]

let plan_of ?(cores = 8) ?strategy name =
  let request =
    {
      Maestro.Pipeline.default_request with
      cores;
      strategy = Option.value ~default:`Auto strategy;
    }
  in
  (Maestro.Pipeline.parallelize_exn ~request (Nfs.Registry.find_exn name)).Maestro.Pipeline.plan

let verdicts_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> true
         | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) ->
             pa = pb && Packet.Pkt.equal oa ob
         | _ -> false)
       a b

let mixed_trace seed npkts nflows =
  let st = rng seed in
  let flows = Traffic.Gen.flows st nflows in
  Traffic.Gen.uniform
    ~spec:{ Traffic.Gen.default_spec with pkts = npkts }
    st ~flows

(* --- shared-nothing equivalence ------------------------------------------ *)

let check_equivalence name trace =
  let nf = Nfs.Registry.find_exn name in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of name in
  let par = Runtime.Parallel.run plan trace in
  Alcotest.(check bool)
    (Printf.sprintf "%s: parallel == sequential" name)
    true
    (verdicts_equal seq par.Runtime.Parallel.verdicts)

let test_fw_equivalence () = check_equivalence "fw" (mixed_trace 11 4000 300)
let test_policer_equivalence () = check_equivalence "policer" (mixed_trace 12 4000 300)
let test_psd_equivalence () = check_equivalence "psd" (mixed_trace 13 4000 300)
let test_cl_equivalence () = check_equivalence "cl" (mixed_trace 14 4000 300)
let test_nop_equivalence () = check_equivalence "nop" (mixed_trace 15 2000 100)
let test_sbridge_lb_mode () = check_equivalence "sbridge" (mixed_trace 16 1000 50)

(* Lock-based and TM plans serialize on shared state: equivalence holds for
   every NF, including the ones that cannot shard. *)
let test_lock_based_equivalence () =
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      let trace = mixed_trace 17 2000 200 in
      let seq = Runtime.Parallel.run_sequential nf trace in
      let plan = plan_of ~strategy:`Force_locks name in
      let par = Runtime.Parallel.run plan trace in
      Alcotest.(check bool) (name ^ " lock-based == sequential") true
        (verdicts_equal seq par.Runtime.Parallel.verdicts))
    [ "fw"; "dbridge"; "lb"; "nat"; "cl" ]

let test_tm_equivalence () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 18 2000 200 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~strategy:`Force_tm "fw" in
  let par = Runtime.Parallel.run plan trace in
  Alcotest.(check bool) "tm == sequential" true (verdicts_equal seq par.Runtime.Parallel.verdicts);
  Alcotest.(check int) "rw sets recorded" (Array.length trace)
    (List.length par.Runtime.Parallel.stats.Runtime.Parallel.tm_rw_sets)

(* NAT: ports may be allocated differently per core, so equivalence is
   behavioral: same forward/drop pattern and replies restored correctly. *)
let test_nat_behavioral_equivalence () =
  let nf = Nfs.Registry.find_exn "nat" in
  let trace = mixed_trace 19 3000 250 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of "nat" in
  let par = (Runtime.Parallel.run plan trace).Runtime.Parallel.verdicts in
  Array.iteri
    (fun i (a, b) ->
      match (a, b) with
      | Dsl.Interp.Dropped, Dsl.Interp.Dropped -> ()
      | Dsl.Interp.Fwd (pa, oa), Dsl.Interp.Fwd (pb, ob) ->
          Alcotest.(check int) "same direction" pa pb;
          (* replies towards the LAN must restore identical client headers *)
          if pa = 0 then begin
            Alcotest.(check int) "client ip" oa.Packet.Pkt.ip_dst ob.Packet.Pkt.ip_dst;
            Alcotest.(check int) "client port" oa.Packet.Pkt.dst_port ob.Packet.Pkt.dst_port
          end
      | _ -> Alcotest.fail (Printf.sprintf "verdict %d diverged" i))
    (Array.map2 (fun a b -> (a, b)) seq par)

(* Write/read packet classification feeds the §6.4 performance stories. *)
let test_lock_stats_read_heavy () =
  let plan = plan_of ~strategy:`Force_locks "fw" in
  let st = rng 21 in
  let flows = Traffic.Gen.flows st 64 in
  let trace =
    Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 4000; reply_fraction = 0.5 }
      st ~flows
  in
  let r = Runtime.Parallel.run plan trace in
  let s = r.Runtime.Parallel.stats in
  (* 64 new flows in 4000 packets: writes are rare *)
  Alcotest.(check bool) "read packets dominate" true
    (s.Runtime.Parallel.read_pkts > 9 * s.Runtime.Parallel.write_pkts);
  Alcotest.(check int) "restarts = write pkts" s.Runtime.Parallel.write_pkts
    s.Runtime.Parallel.spec_restarts;
  Alcotest.(check bool) "rejuvenations stayed local" true
    (s.Runtime.Parallel.rejuv_local > 0)

let test_policer_lock_stats_write_heavy () =
  let plan = plan_of ~strategy:`Force_locks "policer" in
  let st = rng 22 in
  let flows = Traffic.Gen.flows st 64 in
  let trace =
    Traffic.Gen.uniform ~spec:{ Traffic.Gen.default_spec with pkts = 2000; reply_fraction = 0.9 }
      st ~flows
  in
  let r = Runtime.Parallel.run plan trace in
  let s = r.Runtime.Parallel.stats in
  (* every policed (WAN->LAN) packet updates its token bucket *)
  Alcotest.(check bool) "writes dominate reads side" true
    (s.Runtime.Parallel.write_pkts > s.Runtime.Parallel.read_pkts / 4)

let test_dispatch_spreads_over_cores () =
  let plan = plan_of ~cores:8 "fw" in
  let trace = mixed_trace 23 4000 512 in
  let counts = Runtime.Parallel.dispatch_counts plan trace in
  Alcotest.(check int) "8 cores" 8 (Array.length counts);
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Printf.sprintf "core %d used" i) true (c > 0))
    counts

let test_dynamic_rebalance_reduces_imbalance () =
  let st = rng 31 in
  let z = Traffic.Zipf.paper () in
  let fs = Traffic.Gen.flows st 1000 in
  let spec = { Traffic.Gen.default_spec with Traffic.Gen.pkts = 12_000; reply_fraction = 0.0 } in
  let trace = Traffic.Zipf.trace ~spec st z ~flows:fs in
  let plan = plan_of ~cores:8 "fw" in
  let r = Runtime.Rebalance.study_exn plan trace ~epoch_pkts:3000 in
  Alcotest.(check int) "epochs" 4 r.Runtime.Rebalance.epochs;
  (* the first epoch has no observations yet: identical *)
  Alcotest.(check (float 0.0001)) "epoch 0 identical"
    r.Runtime.Rebalance.static_imbalance.(0)
    r.Runtime.Rebalance.dynamic_imbalance.(0);
  (* afterwards the rebalanced tables are at least as even *)
  for e = 1 to r.Runtime.Rebalance.epochs - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "epoch %d no worse" e)
      true
      (r.Runtime.Rebalance.dynamic_imbalance.(e)
      <= r.Runtime.Rebalance.static_imbalance.(e) +. 0.05)
  done;
  Alcotest.(check bool) "some epoch strictly better" true
    (Array.exists2
       (fun d s -> d < s -. 0.1)
       r.Runtime.Rebalance.dynamic_imbalance r.Runtime.Rebalance.static_imbalance);
  Alcotest.(check bool) "migrations counted" true (r.Runtime.Rebalance.migrated_buckets > 0)

(* --- real domains ---------------------------------------------------------- *)

let test_domains_shared_nothing_equivalence () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 24 1500 150 in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let plan = plan_of ~cores:4 "fw" in
  let par = Runtime.Domains.run_shared_nothing plan trace in
  Alcotest.(check bool) "domains == sequential" true (verdicts_equal seq par)

let test_domains_lock_based_equivalence () =
  (* dbridge writes on most packets: the conservative discipline serializes
     them, so verdicts match the deterministic run *)
  let nf = Nfs.Registry.find_exn "sbridge" in
  let st = rng 25 in
  let pkts =
    Array.init 500 (fun i ->
        Packet.Pkt.make ~port:(i mod 2)
          ~eth_src:(0x02_00_00_00_10_00 + Random.State.int st 64)
          ~eth_dst:(0x02_00_00_00_10_00 + Random.State.int st 64)
          ~ip_src:1 ~ip_dst:2 ~src_port:3 ~dst_port:4 ())
  in
  let seq = Runtime.Parallel.run_sequential nf pkts in
  let plan = plan_of ~cores:4 ~strategy:`Force_locks "sbridge" in
  let par = Runtime.Domains.run_lock_based plan pkts in
  Alcotest.(check bool) "domain locks == sequential" true (verdicts_equal seq par)

(* --- persistent domain pool ------------------------------------------------ *)

let test_pool_ring () =
  let r = Runtime.Pool.Ring.create ~capacity:3 in
  Alcotest.(check int) "capacity rounds to power of two" 4 (Runtime.Pool.Ring.capacity r);
  Alcotest.(check bool) "fresh ring empty" true (Runtime.Pool.Ring.is_empty r);
  Alcotest.(check (option int)) "pop empty" None (Runtime.Pool.Ring.pop r);
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "push %d" i) true (Runtime.Pool.Ring.try_push r i)
  done;
  Alcotest.(check bool) "push on full fails" false (Runtime.Pool.Ring.try_push r 5);
  Alcotest.(check int) "length full" 4 (Runtime.Pool.Ring.length r);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Runtime.Pool.Ring.pop r);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Runtime.Pool.Ring.pop r);
  (* wrap-around: push more than capacity total *)
  Alcotest.(check bool) "push after pop" true (Runtime.Pool.Ring.try_push r 5);
  Alcotest.(check bool) "push after pop 2" true (Runtime.Pool.Ring.try_push r 6);
  let rec drain acc = match Runtime.Pool.Ring.pop r with
    | Some v -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "fifo across wrap" [ 3; 4; 5; 6 ] (drain []);
  Alcotest.(check bool) "drained empty" true (Runtime.Pool.Ring.is_empty r)

let test_pool_ring_spsc_stress () =
  let r = Runtime.Pool.Ring.create ~capacity:8 in
  let n = 20_000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and seen = ref 0 and last = ref (-1) in
        while !seen < n do
          match Runtime.Pool.Ring.pop r with
          | Some v ->
              if v <= !last then failwith "out of order";
              last := v;
              sum := !sum + v;
              incr seen
          | None -> Domain.cpu_relax ()
        done;
        !sum)
  in
  for i = 0 to n - 1 do
    while not (Runtime.Pool.Ring.try_push r i) do
      Domain.cpu_relax ()
    done
  done;
  Alcotest.(check int) "all values crossed in order" (n * (n - 1) / 2) (Domain.join consumer)

(* The acceptance criterion: the pool produces identical verdicts to the
   spawn-per-run path (and to sequential execution) for shared-nothing,
   lock-based, and TM plans. *)
let test_pool_matches_spawning_shared_nothing () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 41 1500 150 in
  let plan = plan_of ~cores:4 "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let spawning = Runtime.Domains.run_shared_nothing_spawning plan trace in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let pooled = Runtime.Pool.run pool plan trace in
  Alcotest.(check bool) "pool == spawning" true (verdicts_equal spawning pooled);
  Alcotest.(check bool) "pool == sequential" true (verdicts_equal seq pooled)

let test_pool_matches_spawning_lock_based () =
  let nf = Nfs.Registry.find_exn "sbridge" in
  let st = rng 42 in
  let pkts =
    Array.init 600 (fun i ->
        Packet.Pkt.make ~port:(i mod 2)
          ~eth_src:(0x02_00_00_00_10_00 + Random.State.int st 64)
          ~eth_dst:(0x02_00_00_00_10_00 + Random.State.int st 64)
          ~ip_src:1 ~ip_dst:2 ~src_port:3 ~dst_port:4 ())
  in
  let plan = plan_of ~cores:4 ~strategy:`Force_locks "sbridge" in
  let seq = Runtime.Parallel.run_sequential nf pkts in
  let spawning = Runtime.Domains.run_lock_based_spawning plan pkts in
  let pool = Runtime.Pool.create ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let pooled = Runtime.Pool.run pool plan pkts in
  Alcotest.(check bool) "pool == spawning" true (verdicts_equal spawning pooled);
  Alcotest.(check bool) "pool == sequential" true (verdicts_equal seq pooled)

let test_pool_tm_equivalence () =
  (* Real-domain lock/TM disciplines serialize writes in acquisition order,
     which can differ from arrival order across cores (as on hardware), so
     the comparison trace must be order-insensitive: LAN->WAN fw traffic is
     always forwarded, whatever the flow table holds. *)
  let nf = Nfs.Registry.find_exn "fw" in
  let st = rng 43 in
  let flows = Traffic.Gen.flows st 150 in
  let trace =
    Traffic.Gen.uniform
      ~spec:{ Traffic.Gen.default_spec with pkts = 1200; reply_fraction = 0.0 }
      st ~flows
  in
  let plan = plan_of ~cores:4 ~strategy:`Force_tm "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let spawning = Runtime.Domains.run_lock_based_spawning plan trace in
  let pooled = Runtime.Domains.run_tm plan trace in
  Alcotest.(check bool) "tm on pool == sequential" true (verdicts_equal seq pooled);
  Alcotest.(check bool) "tm on pool == spawn-per-run" true (verdicts_equal spawning pooled)

let test_pool_batch_sizes () =
  (* batch size must not change behavior: 1 (degenerate), 32 (default),
     7 (odd, exercises the ragged final batch) *)
  let nf = Nfs.Registry.find_exn "policer" in
  let trace = mixed_trace 44 900 120 in
  let plan = plan_of ~cores:3 "policer" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  List.iter
    (fun bs ->
      let pool = Runtime.Pool.create ~batch_size:bs ~cores:3 () in
      Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
      let v = Runtime.Pool.run pool plan trace in
      Alcotest.(check bool) (Printf.sprintf "batch=%d == sequential" bs) true
        (verdicts_equal seq v))
    [ 1; 32; 7 ]

let test_pool_reuse_and_stats () =
  let nf = Nfs.Registry.find_exn "fw" in
  let trace = mixed_trace 45 1000 100 in
  let plan = plan_of ~cores:4 "fw" in
  let seq = Runtime.Parallel.run_sequential nf trace in
  let pool = Runtime.Pool.create ~batch_size:32 ~cores:4 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "cores" 4 (Runtime.Pool.cores pool);
  Alcotest.(check int) "batch size" 32 (Runtime.Pool.batch_size pool);
  (* same pool, many runs: domains are not respawned, results stay right *)
  for _ = 1 to 3 do
    let v = Runtime.Pool.run pool plan trace in
    Alcotest.(check bool) "reused pool == sequential" true (verdicts_equal seq v)
  done;
  let s = Runtime.Pool.stats pool in
  Alcotest.(check int) "runs counted" 3 s.Runtime.Pool.runs;
  Alcotest.(check int) "pkts counted" (3 * Array.length trace) s.Runtime.Pool.pkts;
  Alcotest.(check bool) "batches counted" true
    (s.Runtime.Pool.batches >= 3 * (Array.length trace / Runtime.Pool.default_batch_size));
  Alcotest.(check int) "per-core counts cover the trace" (Array.length trace)
    (Array.fold_left ( + ) 0 s.Runtime.Pool.last_per_core_pkts);
  (* measured shares feed the throughput model *)
  let shares = Sim.Throughput.shares_of_pool_stats s in
  Alcotest.(check int) "share per core" 4 (Array.length shares);
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 shares);
  let profile = Sim.Profile.of_trace plan.Maestro.Plan.nf trace in
  let ev = Sim.Throughput.evaluate ~measured_shares:shares plan profile trace in
  Alcotest.(check bool) "model accepts measured shares" true (ev.Sim.Throughput.mpps > 0.0);
  Alcotest.check_raises "share length validated"
    (Invalid_argument "Throughput.evaluate: measured_shares length") (fun () ->
      ignore (Sim.Throughput.evaluate ~measured_shares:[| 1.0 |] plan profile trace))

let test_pool_rejects_oversized_plan () =
  let pool = Runtime.Pool.create ~cores:2 () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
  let plan = plan_of ~cores:4 "fw" in
  let trace = mixed_trace 46 100 10 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Runtime.Pool.run pool plan trace);
       false
     with Invalid_argument _ -> true)

let test_rwlock_mutual_exclusion () =
  let lock = Runtime.Rwlock.create ~cores:4 in
  let counter = ref 0 in
  let writers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Runtime.Rwlock.with_write lock (fun () -> incr counter)
            done))
  in
  Array.iter Domain.join writers;
  Alcotest.(check int) "no lost updates" 4000 !counter

let test_rwlock_readers_disjoint () =
  let lock = Runtime.Rwlock.create ~cores:2 in
  (* two readers on different cores can hold their locks simultaneously *)
  Runtime.Rwlock.read_lock lock ~core:0;
  Runtime.Rwlock.read_lock lock ~core:1;
  Runtime.Rwlock.read_unlock lock ~core:0;
  Runtime.Rwlock.read_unlock lock ~core:1;
  Runtime.Rwlock.with_write lock (fun () -> ());
  Alcotest.(check pass) "no deadlock" () ()

let test_supervisor_policy () =
  (* pure-policy checks on logical time: backoff growth, the per-core
     sliding restart window, and one-shot stuck reporting *)
  let config =
    {
      Runtime.Supervisor.max_restarts = 2;
      window = 10;
      backoff_base = 3;
      backoff_factor = 5;
      stall_checks = 2;
    }
  in
  let s = Runtime.Supervisor.create ~config ~cores:2 () in
  (match Runtime.Supervisor.on_death s ~core:0 with
  | `Restart b -> Alcotest.(check int) "first backoff" 3 b
  | `Give_up -> Alcotest.fail "first death should restart");
  (match Runtime.Supervisor.on_death s ~core:0 with
  | `Restart b -> Alcotest.(check int) "backoff grows by the factor" 15 b
  | `Give_up -> Alcotest.fail "second death should restart");
  Alcotest.(check bool) "window budget exhausted" true
    (Runtime.Supervisor.on_death s ~core:0 = `Give_up);
  (match Runtime.Supervisor.on_death s ~core:1 with
  | `Restart _ -> ()
  | `Give_up -> Alcotest.fail "budgets are per core");
  (* the window slides with logical time: old restarts age out *)
  for _ = 1 to config.Runtime.Supervisor.window + 1 do
    Runtime.Supervisor.tick s
  done;
  (match Runtime.Supervisor.on_death s ~core:0 with
  | `Restart b -> Alcotest.(check int) "budget refilled, backoff reset" 3 b
  | `Give_up -> Alcotest.fail "the window should refill");
  (* stuck: fires once per stall, only with work queued, reset by progress *)
  let hb h r = Runtime.Supervisor.note_heartbeat s ~core:1 ~heartbeat:h ~ring_len:r in
  Alcotest.(check bool) "progress is ok" true (hb 5 3 = `Ok);
  Alcotest.(check bool) "one stagnant check is ok" true (hb 5 3 = `Ok);
  Alcotest.(check bool) "threshold reached -> stuck" true (hb 5 3 = `Stuck);
  Alcotest.(check bool) "reported once per stall" true (hb 5 3 = `Ok);
  Alcotest.(check bool) "progress rearms" true (hb 6 3 = `Ok);
  Alcotest.(check bool) "empty ring never counts" true (hb 6 0 = `Ok && hb 6 0 = `Ok && hb 6 0 = `Ok);
  let evs = Runtime.Supervisor.events s in
  Alcotest.(check int) "events recorded" 6 (List.length evs);
  Alcotest.(check int) "restarts counted" 4 (Runtime.Supervisor.restarts s)

let test_rwlock_writer_not_starved () =
  let lock = Runtime.Rwlock.create ~cores:3 in
  let stop = Atomic.make false in
  let reads = Array.init 3 (fun _ -> Atomic.make 0) in
  let readers =
    Array.init 3 (fun core ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Runtime.Rwlock.with_read lock ~core (fun () -> Atomic.incr reads.(core))
            done))
  in
  (* Regression: before the [writers_waiting] gate, readers re-acquiring
     their own per-core flag could win the CAS race against a writer (which
     needs every flag) indefinitely — this loop stalled unboundedly under
     continuous reader churn. *)
  let v = ref 0 in
  for _ = 1 to 200 do
    Runtime.Rwlock.with_write lock (fun () -> incr v);
    Domain.cpu_relax ()
  done;
  (* writers done: let every reader observe at least one read, then stop *)
  while Array.exists (fun r -> Atomic.get r = 0) reads do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  Alcotest.(check int) "all writes landed" 200 !v;
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "reader %d progressed" i) true (Atomic.get r > 0))
    reads

(* --- properties ------------------------------------------------------------ *)

let prop_shared_nothing_equivalence =
  QCheck.Test.make ~name:"fw shared-nothing equivalence on random traces" ~count:10
    QCheck.(pair (int_range 0 10000) (int_range 2 16))
    (fun (seed, cores) ->
      let nf = Nfs.Registry.find_exn "fw" in
      let trace = mixed_trace seed 800 100 in
      let seq = Runtime.Parallel.run_sequential nf trace in
      let plan = plan_of ~cores "fw" in
      let par = Runtime.Parallel.run plan trace in
      verdicts_equal seq par.Runtime.Parallel.verdicts)

let suite =
  [
    Alcotest.test_case "fw shared-nothing equivalence" `Quick test_fw_equivalence;
    Alcotest.test_case "policer shared-nothing equivalence" `Quick test_policer_equivalence;
    Alcotest.test_case "psd shared-nothing equivalence" `Quick test_psd_equivalence;
    Alcotest.test_case "cl shared-nothing equivalence" `Quick test_cl_equivalence;
    Alcotest.test_case "nop equivalence" `Quick test_nop_equivalence;
    Alcotest.test_case "sbridge load-balance equivalence" `Quick test_sbridge_lb_mode;
    Alcotest.test_case "lock-based equivalence (all NFs)" `Quick test_lock_based_equivalence;
    Alcotest.test_case "tm equivalence" `Quick test_tm_equivalence;
    Alcotest.test_case "nat behavioral equivalence" `Quick test_nat_behavioral_equivalence;
    Alcotest.test_case "fw lock stats are read-heavy" `Quick test_lock_stats_read_heavy;
    Alcotest.test_case "policer lock stats are write-heavy" `Quick
      test_policer_lock_stats_write_heavy;
    Alcotest.test_case "dispatch spreads over cores" `Quick test_dispatch_spreads_over_cores;
    Alcotest.test_case "dynamic rebalance reduces imbalance" `Quick
      test_dynamic_rebalance_reduces_imbalance;
    Alcotest.test_case "domains shared-nothing equivalence" `Quick
      test_domains_shared_nothing_equivalence;
    Alcotest.test_case "domains lock-based equivalence" `Quick
      test_domains_lock_based_equivalence;
    Alcotest.test_case "pool ring fifo + wrap" `Quick test_pool_ring;
    Alcotest.test_case "pool ring spsc stress" `Quick test_pool_ring_spsc_stress;
    Alcotest.test_case "pool == spawning (shared-nothing)" `Quick
      test_pool_matches_spawning_shared_nothing;
    Alcotest.test_case "pool == spawning (lock-based)" `Quick
      test_pool_matches_spawning_lock_based;
    Alcotest.test_case "pool tm equivalence" `Quick test_pool_tm_equivalence;
    Alcotest.test_case "pool batch sizes 1/32/7" `Quick test_pool_batch_sizes;
    Alcotest.test_case "pool reuse, stats, measured shares" `Quick test_pool_reuse_and_stats;
    Alcotest.test_case "pool rejects oversized plan" `Quick test_pool_rejects_oversized_plan;
    Alcotest.test_case "rwlock mutual exclusion" `Quick test_rwlock_mutual_exclusion;
    Alcotest.test_case "rwlock readers disjoint" `Quick test_rwlock_readers_disjoint;
    Alcotest.test_case "supervisor policy" `Quick test_supervisor_policy;
    Alcotest.test_case "rwlock writer not starved" `Quick test_rwlock_writer_not_starved;
    QCheck_alcotest.to_alcotest prop_shared_nothing_equivalence;
  ]
