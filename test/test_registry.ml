(* The NF registry (lib/nfs/registry.ml): every published name builds,
   round-trips lookup, stages cleanly under the compiler, declares
   unambiguous state, and composes into chains — the contracts the CLI,
   the benches and Dsl.Chain all lean on. *)

open Dsl.Ast

let decl_name = function
  | Decl_map { name; _ } | Decl_vector { name; _ } | Decl_chain { name; _ }
  | Decl_sketch { name; _ } ->
      name

(* every extended name resolves, and the NF it builds answers to it *)
let test_names_round_trip () =
  List.iter
    (fun name ->
      match Nfs.Registry.find name with
      | None -> Alcotest.failf "%s: published but find returns None" name
      | Some nf ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: fresh builds are independent values" name)
            true
            (Nfs.Registry.find_exn name == Nfs.Registry.find_exn name = false);
          Alcotest.(check bool)
            (Printf.sprintf "%s: expected_strategy is published" name)
            true
            (match Nfs.Registry.expected_strategy name with
            | `Shared_nothing | `Locks | `Read_only_lb -> true);
          ignore nf)
    Nfs.Registry.extended_names;
  Alcotest.(check bool) "unknown name finds nothing" true (Nfs.Registry.find "no_such_nf" = None);
  Alcotest.(check bool) "names is a prefix of extended_names" true
    (List.for_all (fun n -> List.mem n Nfs.Registry.extended_names) Nfs.Registry.names)

(* every registry NF passes Check and stages under Dsl.Compile *)
let test_all_stage_cleanly () =
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      match Dsl.Check.check nf with
      | Error es -> Alcotest.failf "%s: Check fails: %s" name (String.concat "; " es)
      | Ok info ->
          let staged = Dsl.Compile.stage nf info in
          let bound = Dsl.Compile.bind staged (Dsl.Instance.create nf) in
          let pkt =
            Packet.Pkt.make ~port:0 ~ip_src:1 ~ip_dst:2 ~src_port:3 ~dst_port:4 ()
          in
          (* the bound closure runs: any verdict will do *)
          ignore (Dsl.Compile.process bound pkt : Dsl.Interp.action))
    Nfs.Registry.extended_names

(* state-object names are distinct within each NF (what Chain's
   namespacing preserves) and each NF's name is distinct in the registry *)
let test_distinct_names () =
  let dup l =
    let sorted = List.sort compare l in
    let rec go = function a :: b :: _ when a = b -> Some a | _ :: t -> go t | [] -> None in
    go sorted
  in
  (match dup Nfs.Registry.extended_names with
  | Some n -> Alcotest.failf "registry name %s published twice" n
  | None -> ());
  List.iter
    (fun name ->
      let nf = Nfs.Registry.find_exn name in
      match dup (List.map decl_name nf.state) with
      | Some o -> Alcotest.failf "%s: state object %s declared twice" name o
      | None -> ())
    Nfs.Registry.extended_names

(* every registry NF chains with itself — or, for the bridges, whose
   egress port is a learned value rather than a constant, is rejected
   with exactly the non-spliceable-forward error and still composes as a
   final stage *)
let test_self_chains () =
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  List.iter
    (fun name ->
      let nf () = Nfs.Registry.find_exn name in
      match Dsl.Chain.compose [ nf (); nf () ] with
      | Ok chain -> (
          match Dsl.Check.check (Dsl.Chain.nf chain) with
          | Error es ->
              Alcotest.failf "%s: self-chain fails Check: %s" name (String.concat "; " es)
          | Ok info ->
              ignore
                (Dsl.Compile.bind
                   (Dsl.Compile.stage (Dsl.Chain.nf chain) info)
                   (Dsl.Instance.create (Dsl.Chain.nf chain))))
      | Error e ->
          if not (contains e "constant") then
            Alcotest.failf "%s: self-chain rejected for the wrong reason: %s" name e;
          (* a dynamic forward is still a valid chain *verdict*: the same
             NF must compose when it is the final stage *)
          let pass =
            Dsl.Chain.filter ~devices:(nf ()).devices ~name:"pass"
              Dsl.Ast.(const 1 ==. const 1)
          in
          (match Dsl.Chain.compose [ pass; nf () ] with
          | Ok _ -> ()
          | Error e' -> Alcotest.failf "%s: rejected even as final stage: %s" name e'))
    Nfs.Registry.extended_names

(* compose_chain: the CLI's name-list entry point *)
let test_compose_chain () =
  (match Nfs.Registry.compose_chain [ "fw"; "nat"; "lb" ] with
  | Error e -> Alcotest.failf "fw,nat,lb rejected: %s" e
  | Ok chain ->
      Alcotest.(check int) "three stages" 3 (List.length chain.Dsl.Chain.stages);
      Alcotest.(check string) "derived name" "chain_fw_nat_lb" chain.Dsl.Chain.name);
  (match Nfs.Registry.compose_chain [ "fw"; "no_such_nf" ] with
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "unknown name reported: %s" e)
        true
        (String.length e >= 7 && String.sub e 0 7 = "unknown")
  | Ok _ -> Alcotest.fail "unknown NF accepted");
  match Nfs.Registry.compose_chain [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty chain accepted"

let suite =
  [
    Alcotest.test_case "names round-trip lookup" `Quick test_names_round_trip;
    Alcotest.test_case "all NFs stage under the compiler" `Quick test_all_stage_cleanly;
    Alcotest.test_case "distinct registry and state-object names" `Quick test_distinct_names;
    Alcotest.test_case "every NF self-chains" `Quick test_self_chains;
    Alcotest.test_case "compose_chain from names" `Quick test_compose_chain;
  ]
